//===- svc/Proxy.cpp - The comlat-shard routing front end ------------------===//

#include "svc/Proxy.h"

#include "svc/LoadGen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace comlat;
using namespace comlat::svc;

namespace {

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void putU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

namespace comlat {
namespace svc {

/// One client connection; owned by its I/O thread.
struct ProxyConn {
  int Fd = -1;
  std::string ReadBuf;
  size_t ReadPos = 0;
  std::string WriteBuf;
  size_t WritePos = 0;
  bool WriteArmed = false;
  bool WantClose = false;
  std::atomic<bool> Closed{false};

  size_t buffered() const { return WriteBuf.size() - WritePos; }
};

/// One proxy event loop: a subset of the client connections plus this
/// thread's own connection to every backend shard (threads never share
/// backend sockets, so no cross-thread reply demultiplexing exists).
class ProxyIo {
public:
  ProxyIo(Proxy &P, unsigned Index) : P(P), Index(Index) {
    EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
    WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    struct epoll_event Ev {};
    Ev.events = EPOLLIN;
    Ev.data.u64 = TagWake;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
    Backends.resize(P.Config.Backends.size());
    for (size_t S = 0; S != Backends.size(); ++S) {
      Backends[S].Host = P.Config.Backends[S].Host;
      Backends[S].Port = P.Config.Backends[S].Port;
    }
    JitterState ^= (Index + 1) * 0xBF58476D1CE4E5B9ull;
  }

  ~ProxyIo() {
    if (EpollFd >= 0)
      ::close(EpollFd);
    if (WakeFd >= 0)
      ::close(WakeFd);
  }

  void wake() {
    const uint64_t One = 1;
    [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
  }

  void adoptConnection(int Fd) {
    {
      std::lock_guard<std::mutex> Guard(HandoffMu);
      NewFds.push_back(Fd);
    }
    wake();
  }

  void registerListener(int ListenFd) {
    struct epoll_event Ev {};
    Ev.events = EPOLLIN;
    Ev.data.u64 = TagListener;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);
  }

  void run();

private:
  static constexpr uint64_t TagWake = 0;
  static constexpr uint64_t TagListener = 1;
  static constexpr uint64_t TagBackendBase = 2;

  /// Which sub-batch a backend req id resolves to.
  struct SubRef {
    uint64_t BatchId = 0;
    unsigned SubIdx = 0;
  };

  struct SubState {
    enum class St : uint8_t { Pending, Ok, Failed } State = St::Pending;
    uint64_t CommitSeq = 0;
    std::vector<int64_t> Results;
    unsigned BusyTries = 0;
    unsigned RedirectTries = 0;
    /// Failed only: the failure was Busy exhaustion (still retryable by
    /// the client when nothing committed).
    bool BusyFail = false;
    std::string ErrText;
  };

  /// One in-flight client batch and its fan-out bookkeeping.
  struct Batch {
    std::shared_ptr<ProxyConn> Conn;
    uint64_t ClientReqId = 0;
    std::vector<Op> Ops;
    RoutePlan Plan;
    std::vector<SubState> Subs; // parallel to Plan.Subs
    unsigned Outstanding = 0;
    /// Arrival stamp; finishBatch records the route-kind RTT from it.
    uint64_t StartUs = 0;
  };

  /// This thread's link to one backend shard.
  struct BConn {
    std::string Host;
    uint16_t Port = 0;
    int Fd = -1;
    enum class St : uint8_t { Down, Connecting, Ready } State = St::Down;
    std::string ReadBuf;
    size_t ReadPos = 0;
    std::string WriteBuf;
    size_t WritePos = 0;
    bool WriteArmed = false;
    bool EverConnected = false;
    std::unordered_map<uint64_t, SubRef> Pending;
    uint64_t RetryAtMs = 0; // earliest next dial
    /// Consecutive dial/drop failures since the last successful connect;
    /// drives the exponential reconnect backoff.
    unsigned FailStreak = 0;

    size_t buffered() const { return WriteBuf.size() - WritePos; }
  };

  struct Retry {
    uint64_t DueMs = 0;
    uint64_t BatchId = 0;
    unsigned SubIdx = 0;
  };

  void acceptNew();
  void addConnection(int Fd);
  void updateInterest(ProxyConn *C);
  void closeConnection(ProxyConn *C);
  void handleRead(ProxyConn *C);
  void parseFrames(ProxyConn *C);
  void handleFrame(ProxyConn *C, std::string_view Payload);
  void handleBatch(ProxyConn *C, Request &Req, std::string_view Payload);
  void scatterState(ProxyConn *C, uint64_t ReqId);
  void scatterMetrics(ProxyConn *C, uint64_t ReqId);
  void relaySnapState(ProxyConn *C, uint64_t ReqId, uint32_t Shard);
  void queueReply(ProxyConn *C, const Response &R);
  void appendAndFlush(ProxyConn *C, const std::string &Bytes);
  void flushWrites(ProxyConn *C);

  bool dialBackend(unsigned Shard);
  /// The next reconnect delay for \p B: base << FailStreak (capped at the
  /// configured max) with xorshift jitter in [0.75D, 1.25D), counting
  /// escalations beyond the base in ReconnectBackoffs. Bumps FailStreak.
  uint64_t reconnectBackoffMs(BConn &B);
  void backendReady(unsigned Shard);
  void backendDown(unsigned Shard, const std::string &Why);
  void flushBackend(unsigned Shard);
  void armBackend(unsigned Shard);
  void handleBackendEvent(unsigned Shard, uint32_t Events);
  void handleBackendRead(unsigned Shard);
  void onBackendReply(unsigned Shard, const Response &R);
  void sendSub(uint64_t BatchId, unsigned SubIdx,
               std::string_view SplicedOps = {});
  void failSub(uint64_t BatchId, unsigned SubIdx, const std::string &Why,
               bool BusyFail);
  void finishBatch(uint64_t BatchId);
  void processRetries();
  void drainHandoff();
  bool drainComplete();

  Proxy &P;
  unsigned Index;
  int EpollFd = -1;
  int WakeFd = -1;
  std::mutex HandoffMu;
  std::vector<int> NewFds; // guarded by HandoffMu
  std::unordered_map<int, std::shared_ptr<ProxyConn>> Conns;
  std::vector<std::shared_ptr<ProxyConn>> Dead;
  std::vector<BConn> Backends; // indexed by shard
  std::unordered_map<uint64_t, Batch> Inflight;
  std::deque<Retry> Retries; // FIFO: the delay is constant, so it is sorted
  uint64_t NextBatchId = 1;
  uint64_t NextSubReqId = 1;
  bool ListenerClosed = false;
  uint64_t DrainDeadlineMs = 0;
  /// xorshift state for reconnect-backoff jitter (per thread, seeded off
  /// the thread index so the threads' re-dials desynchronize).
  uint64_t JitterState = 0x9E3779B97F4A7C15ull;
  static std::atomic<unsigned> NextAccept;

  friend class Proxy;
};

std::atomic<unsigned> ProxyIo::NextAccept{0};

} // namespace svc
} // namespace comlat

//===----------------------------------------------------------------------===//
// Client-side plumbing (mirrors Server.cpp's IoThread)
//===----------------------------------------------------------------------===//

void ProxyIo::addConnection(int Fd) {
  auto C = std::make_shared<ProxyConn>();
  C->Fd = Fd;
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  struct epoll_event Ev {};
  Ev.events = EPOLLIN;
  Ev.data.ptr = C.get();
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    ::close(Fd);
    return;
  }
  Conns.emplace(Fd, std::move(C));
}

void ProxyIo::updateInterest(ProxyConn *C) {
  struct epoll_event Ev {};
  Ev.events = (P.stopRequested() ? 0u : unsigned(EPOLLIN)) |
              (C->WriteArmed ? unsigned(EPOLLOUT) : 0u);
  Ev.data.ptr = C;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C->Fd, &Ev);
}

void ProxyIo::closeConnection(ProxyConn *C) {
  if (C->Closed.exchange(true))
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->Fd, nullptr);
  ::close(C->Fd);
  auto It = Conns.find(C->Fd);
  if (It != Conns.end()) {
    Dead.push_back(std::move(It->second));
    Conns.erase(It);
  }
}

void ProxyIo::acceptNew() {
  for (;;) {
    const int Fd = ::accept4(P.ListenFd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    const unsigned Target =
        NextAccept.fetch_add(1, std::memory_order_relaxed) % P.Io.size();
    if (Target == Index)
      addConnection(Fd);
    else
      P.Io[Target]->adoptConnection(Fd);
  }
}

void ProxyIo::handleRead(ProxyConn *C) {
  char Buf[16 * 1024];
  for (;;) {
    const ssize_t N = ::recv(C->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C->ReadBuf.append(Buf, static_cast<size_t>(N));
      parseFrames(C);
      if (C->Closed.load(std::memory_order_relaxed) || C->WantClose)
        return;
      continue;
    }
    if (N == 0) {
      if (C->buffered() == 0)
        closeConnection(C);
      else
        C->WantClose = true;
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    closeConnection(C);
    return;
  }
}

void ProxyIo::parseFrames(ProxyConn *C) {
  while (!P.stopRequested() && !C->WantClose) {
    std::string_view Rest(C->ReadBuf);
    Rest.remove_prefix(C->ReadPos);
    std::string_view Payload;
    size_t Consumed = 0;
    const FrameResult FR = peelFrame(Rest, Payload, Consumed);
    if (FR == FrameResult::NeedMore)
      break;
    if (FR == FrameResult::Malformed) {
      C->WantClose = true;
      Response R;
      R.St = Status::Error;
      R.Text = "oversized frame";
      queueReply(C, R);
      break;
    }
    C->ReadPos += Consumed;
    handleFrame(C, Payload);
    if (C->Closed.load(std::memory_order_relaxed))
      return;
  }
  if (C->ReadPos > 4096 && C->ReadPos * 2 >= C->ReadBuf.size()) {
    C->ReadBuf.erase(0, C->ReadPos);
    C->ReadPos = 0;
  }
}

void ProxyIo::queueReply(ProxyConn *C, const Response &R) {
  std::string Bytes;
  encodeResponse(R, Bytes);
  appendAndFlush(C, Bytes);
}

void ProxyIo::appendAndFlush(ProxyConn *C, const std::string &Bytes) {
  C->WriteBuf += Bytes;
  flushWrites(C);
  if (C->Closed.load(std::memory_order_relaxed))
    return;
  // A client that stops reading while replies pile up past the cap is
  // dropped: the proxy holds per-batch state per reply owed, so unbounded
  // buffering would be unbounded memory.
  if (C->buffered() > P.Config.MaxWriteBuffered)
    closeConnection(C);
}

void ProxyIo::flushWrites(ProxyConn *C) {
  while (C->WritePos < C->WriteBuf.size()) {
    const ssize_t N = ::send(C->Fd, C->WriteBuf.data() + C->WritePos,
                             C->WriteBuf.size() - C->WritePos, MSG_NOSIGNAL);
    if (N > 0) {
      C->WritePos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!C->WriteArmed) {
        C->WriteArmed = true;
        updateInterest(C);
      }
      return;
    }
    closeConnection(C);
    return;
  }
  C->WriteBuf.clear();
  C->WritePos = 0;
  if (C->WriteArmed) {
    C->WriteArmed = false;
    updateInterest(C);
  }
  if (C->WantClose)
    closeConnection(C);
}

//===----------------------------------------------------------------------===//
// Backend links
//===----------------------------------------------------------------------===//

bool ProxyIo::dialBackend(unsigned Shard) {
  BConn &B = Backends[Shard];
  if (B.State != BConn::St::Down)
    return true;
  const uint64_t Now = nowMs();
  if (Now < B.RetryAtMs)
    return false;
  const int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (Fd < 0) {
    B.RetryAtMs = Now + reconnectBackoffMs(B);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  struct sockaddr_in Addr {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(B.Port);
  if (::inet_pton(AF_INET, B.Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    B.RetryAtMs = Now + reconnectBackoffMs(B);
    return false;
  }
  const int Rc =
      ::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr));
  if (Rc != 0 && errno != EINPROGRESS) {
    ::close(Fd);
    B.RetryAtMs = Now + reconnectBackoffMs(B);
    return false;
  }
  B.Fd = Fd;
  B.State = Rc == 0 ? BConn::St::Ready : BConn::St::Connecting;
  struct epoll_event Ev {};
  Ev.events = EPOLLIN | (B.State == BConn::St::Ready && B.buffered() == 0
                             ? 0u
                             : unsigned(EPOLLOUT));
  Ev.data.u64 = TagBackendBase + Shard;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    ::close(Fd);
    B.Fd = -1;
    B.State = BConn::St::Down;
    B.RetryAtMs = Now + reconnectBackoffMs(B);
    return false;
  }
  if (B.EverConnected)
    P.Reconnects.fetch_add(1, std::memory_order_relaxed);
  B.EverConnected = true;
  if (B.State == BConn::St::Ready)
    B.FailStreak = 0; // connected outright; Connecting resets on ready
  return true;
}

uint64_t ProxyIo::reconnectBackoffMs(BConn &B) {
  const unsigned Shift = std::min(B.FailStreak, 6u);
  uint64_t D = static_cast<uint64_t>(P.Config.ReconnectDelayMs) << Shift;
  D = std::min<uint64_t>(std::max<uint64_t>(D, 1),
                         std::max(1u, P.Config.ReconnectMaxDelayMs));
  if (B.FailStreak > 0)
    P.ReconnectBackoffs.fetch_add(1, std::memory_order_relaxed);
  ++B.FailStreak;
  JitterState ^= JitterState << 13;
  JitterState ^= JitterState >> 7;
  JitterState ^= JitterState << 17;
  const uint64_t Half = std::max<uint64_t>(1, D / 2);
  return D - D / 4 + JitterState % Half;
}

void ProxyIo::backendReady(unsigned Shard) {
  BConn &B = Backends[Shard];
  B.State = BConn::St::Ready;
  B.FailStreak = 0;
  // Drop the Connecting-phase EPOLLOUT: a connected socket is writable
  // almost always, so leaving it armed spins epoll_wait at 100% CPU.
  // flushBackend re-arms it the moment a write actually short-counts.
  armBackend(Shard);
  flushBackend(Shard);
}

void ProxyIo::backendDown(unsigned Shard, const std::string &Why) {
  BConn &B = Backends[Shard];
  if (B.Fd >= 0) {
    ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, B.Fd, nullptr);
    ::close(B.Fd);
    B.Fd = -1;
  }
  B.State = BConn::St::Down;
  B.RetryAtMs = nowMs() + reconnectBackoffMs(B);
  B.ReadBuf.clear();
  B.ReadPos = 0;
  B.WriteBuf.clear();
  B.WritePos = 0;
  B.WriteArmed = false;
  if (!B.Pending.empty())
    P.ShardErrors.fetch_add(1, std::memory_order_relaxed);
  // Fail everything this link owed. Committed siblings of these subs are
  // preserved by finishBatch as partial-commit annotations.
  std::unordered_map<uint64_t, SubRef> Owed;
  Owed.swap(B.Pending);
  for (const auto &[ReqId, Ref] : Owed)
    failSub(Ref.BatchId, Ref.SubIdx,
            "shard " + std::to_string(Shard) + " unavailable (" + Why + ")",
            /*BusyFail=*/false);
}

void ProxyIo::armBackend(unsigned Shard) {
  BConn &B = Backends[Shard];
  struct epoll_event Ev {};
  Ev.events = EPOLLIN | (B.WriteArmed || B.State == BConn::St::Connecting
                             ? unsigned(EPOLLOUT)
                             : 0u);
  Ev.data.u64 = TagBackendBase + Shard;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, B.Fd, &Ev);
}

void ProxyIo::flushBackend(unsigned Shard) {
  BConn &B = Backends[Shard];
  if (B.State != BConn::St::Ready)
    return;
  while (B.WritePos < B.WriteBuf.size()) {
    const ssize_t N = ::send(B.Fd, B.WriteBuf.data() + B.WritePos,
                             B.WriteBuf.size() - B.WritePos, MSG_NOSIGNAL);
    if (N > 0) {
      B.WritePos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!B.WriteArmed) {
        B.WriteArmed = true;
        armBackend(Shard);
      }
      return;
    }
    backendDown(Shard, "send failed");
    return;
  }
  B.WriteBuf.clear();
  B.WritePos = 0;
  if (B.WriteArmed) {
    B.WriteArmed = false;
    armBackend(Shard);
  }
}

void ProxyIo::handleBackendEvent(unsigned Shard, uint32_t Events) {
  BConn &B = Backends[Shard];
  if (B.State == BConn::St::Down)
    return; // stale event from a link closed earlier in this batch
  if (B.State == BConn::St::Connecting && (Events & (EPOLLOUT | EPOLLERR))) {
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(B.Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      backendDown(Shard, std::strerror(SoErr));
      return;
    }
    backendReady(Shard);
    if (B.State == BConn::St::Down)
      return;
  }
  if (Events & (EPOLLHUP | EPOLLERR)) {
    backendDown(Shard, "connection lost");
    return;
  }
  if (Events & EPOLLOUT)
    flushBackend(Shard);
  if (B.State != BConn::St::Down && (Events & EPOLLIN))
    handleBackendRead(Shard);
}

void ProxyIo::handleBackendRead(unsigned Shard) {
  BConn &B = Backends[Shard];
  char Buf[16 * 1024];
  for (;;) {
    const ssize_t N = ::recv(B.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      B.ReadBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      backendDown(Shard, "closed by backend");
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    backendDown(Shard, "recv failed");
    return;
  }
  for (;;) {
    std::string_view Rest(B.ReadBuf);
    Rest.remove_prefix(B.ReadPos);
    std::string_view Payload;
    size_t Consumed = 0;
    const FrameResult FR = peelFrame(Rest, Payload, Consumed);
    if (FR == FrameResult::NeedMore)
      break;
    if (FR == FrameResult::Malformed) {
      backendDown(Shard, "malformed reply frame");
      return;
    }
    B.ReadPos += Consumed;
    Response R;
    if (!decodeResponse(Payload, R)) {
      backendDown(Shard, "undecodable reply");
      return;
    }
    onBackendReply(Shard, R);
    if (B.State == BConn::St::Down)
      return; // the reply handler tore the link down
  }
  if (B.ReadPos > 4096 && B.ReadPos * 2 >= B.ReadBuf.size()) {
    B.ReadBuf.erase(0, B.ReadPos);
    B.ReadPos = 0;
  }
}

//===----------------------------------------------------------------------===//
// Sub-batch lifecycle
//===----------------------------------------------------------------------===//

void ProxyIo::sendSub(uint64_t BatchId, unsigned SubIdx,
                      std::string_view SplicedOps) {
  auto It = Inflight.find(BatchId);
  if (It == Inflight.end())
    return;
  Batch &Ba = It->second;
  const RoutePlan::Sub &Sub = Ba.Plan.Subs[SubIdx];
  const unsigned Shard = Sub.Shard;

  if (!dialBackend(Shard)) {
    failSub(BatchId, SubIdx,
            "shard " + std::to_string(Shard) + " unavailable (backoff)",
            /*BusyFail=*/false);
    return;
  }
  BConn &B = Backends[Shard];
  const uint64_t ReqId = NextSubReqId++;
  B.Pending.emplace(ReqId, SubRef{BatchId, SubIdx});

  // Frame the envelope straight into the link's write buffer. The fast
  // path splices the client's ops bytes verbatim (no per-op re-encode);
  // splits and retries re-encode their subset.
  std::string &Out = B.WriteBuf;
  if (!SplicedOps.empty()) {
    putU32(Out, static_cast<uint32_t>(8 + 1 + 4 + SplicedOps.size()));
    putU64(Out, ReqId);
    Out.push_back(static_cast<char>(MsgType::SubBatch));
    putU32(Out, Shard);
    Out.append(SplicedOps.data(), SplicedOps.size());
  } else {
    Request Req;
    Req.ReqId = ReqId;
    Req.Type = MsgType::SubBatch;
    Req.Shard = Shard;
    Req.Ops.reserve(Sub.OpIdx.size());
    for (const uint32_t I : Sub.OpIdx)
      Req.Ops.push_back(Ba.Ops[I]);
    encodeRequest(Req, Out);
  }
  P.SubBatches.fetch_add(1, std::memory_order_relaxed);
  flushBackend(Shard);
}

void ProxyIo::failSub(uint64_t BatchId, unsigned SubIdx, const std::string &Why,
                      bool BusyFail) {
  auto It = Inflight.find(BatchId);
  if (It == Inflight.end())
    return;
  Batch &Ba = It->second;
  SubState &S = Ba.Subs[SubIdx];
  if (S.State != SubState::St::Pending)
    return;
  S.State = SubState::St::Failed;
  S.BusyFail = BusyFail;
  S.ErrText = Why;
  if (--Ba.Outstanding == 0)
    finishBatch(BatchId);
}

void ProxyIo::onBackendReply(unsigned Shard, const Response &R) {
  BConn &B = Backends[Shard];
  auto PIt = B.Pending.find(R.ReqId);
  if (PIt == B.Pending.end())
    return; // a reply for a batch that already failed out; drop
  const SubRef Ref = PIt->second;
  B.Pending.erase(PIt);

  auto It = Inflight.find(Ref.BatchId);
  if (It == Inflight.end())
    return;
  Batch &Ba = It->second;
  SubState &S = Ba.Subs[Ref.SubIdx];
  if (S.State != SubState::St::Pending)
    return;

  switch (R.St) {
  case Status::Ok: {
    // The backend attests which ring slot executed the transaction; a
    // disagreement means the ring is mis-wired and the result cannot be
    // trusted to the plan.
    if (R.Shards.size() != 1 || R.Shards[0].Shard != Shard ||
        R.Results.size() != Ba.Plan.Subs[Ref.SubIdx].OpIdx.size()) {
      P.Misroutes.fetch_add(1, std::memory_order_relaxed);
      S.State = SubState::St::Failed;
      S.ErrText = "shard " + std::to_string(Shard) +
                  " returned a mismatched sub-batch reply";
      break;
    }
    S.State = SubState::St::Ok;
    S.CommitSeq = R.CommitSeq;
    S.Results = R.Results;
    break;
  }
  case Status::Busy: {
    if (S.BusyTries < P.Config.BusyRetryLimit) {
      ++S.BusyTries;
      P.BusyRetries.fetch_add(1, std::memory_order_relaxed);
      Retries.push_back(
          {nowMs() + P.Config.BusyRetryDelayMs, Ref.BatchId, Ref.SubIdx});
      return; // still outstanding
    }
    S.State = SubState::St::Failed;
    S.BusyFail = true;
    S.ErrText = "shard " + std::to_string(Shard) + " busy after " +
                std::to_string(S.BusyTries) + " retries";
    break;
  }
  case Status::Redirect: {
    // The slot's backend turned follower: re-point at the leader it names
    // and resend there. The ring slot is the unit of re-pointing — every
    // pending sub on the old link fails over with the endpoint.
    std::string Host;
    uint16_t Port = 0;
    if (S.RedirectTries >= P.Config.RedirectLimit ||
        !parseLeaderText(R.Text, Host, Port)) {
      S.State = SubState::St::Failed;
      S.ErrText = "shard " + std::to_string(Shard) + " redirect: " + R.Text;
      break;
    }
    ++S.RedirectTries;
    P.Redirects.fetch_add(1, std::memory_order_relaxed);
    B.Host = Host;
    B.Port = Port;
    backendDown(Shard, "re-pointed by redirect"); // fails other pendings
    Backends[Shard].RetryAtMs = 0;                // re-dial immediately
    Backends[Shard].FailStreak = 0;               // fresh endpoint: no debt
    if (S.State == SubState::St::Pending) {
      sendSub(Ref.BatchId, Ref.SubIdx);
      return;
    }
    break; // backendDown already failed this sub
  }
  case Status::Error: {
    S.State = SubState::St::Failed;
    S.ErrText = R.Text.empty()
                    ? "shard " + std::to_string(Shard) + " error"
                    : R.Text;
    break;
  }
  }
  if (S.State != SubState::St::Pending && --Ba.Outstanding == 0)
    finishBatch(Ref.BatchId);
}

void ProxyIo::finishBatch(uint64_t BatchId) {
  auto It = Inflight.find(BatchId);
  if (It == Inflight.end())
    return;
  Batch &Ba = It->second;

  unsigned OkSubs = 0;
  bool AllBusy = true;
  const std::string *FirstErr = nullptr;
  for (const SubState &S : Ba.Subs) {
    if (S.State == SubState::St::Ok) {
      ++OkSubs;
      continue;
    }
    if (!S.BusyFail) {
      AllBusy = false;
      if (!FirstErr)
        FirstErr = &S.ErrText;
    }
  }

  Response R;
  R.ReqId = Ba.ClientReqId;
  if (OkSubs == Ba.Subs.size()) {
    // Fully committed: results return in original op order; the
    // annotations (plan order = ascending shard) carry each backend's own
    // commit_seq. The legacy CommitSeq field is the largest of them —
    // informative only across shards.
    R.Results.resize(Ba.Ops.size(), 0);
    for (size_t SI = 0; SI != Ba.Subs.size(); ++SI) {
      const RoutePlan::Sub &Sub = Ba.Plan.Subs[SI];
      const SubState &S = Ba.Subs[SI];
      for (size_t K = 0; K != Sub.OpIdx.size(); ++K)
        R.Results[Sub.OpIdx[K]] = S.Results[K];
      R.CommitSeq = std::max(R.CommitSeq, S.CommitSeq);
      R.Shards.push_back({Sub.Shard, S.CommitSeq,
                          static_cast<uint32_t>(Sub.OpIdx.size())});
    }
  } else if (OkSubs == 0 && AllBusy) {
    // Nothing committed anywhere: plain Busy, safely retryable.
    R.St = Status::Busy;
  } else {
    // The partial-commit truth: Error, with annotations naming exactly the
    // sub-batches that did commit (a verifying client replays those ops
    // without result comparison) and no results.
    R.St = Status::Error;
    R.Text = FirstErr ? *FirstErr : "sub-batch failed";
    for (size_t SI = 0; SI != Ba.Subs.size(); ++SI)
      if (Ba.Subs[SI].State == SubState::St::Ok)
        R.Shards.push_back({Ba.Plan.Subs[SI].Shard, Ba.Subs[SI].CommitSeq,
                            static_cast<uint32_t>(
                                Ba.Plan.Subs[SI].OpIdx.size())});
    if (OkSubs > 0)
      P.PartialCommits.fetch_add(1, std::memory_order_relaxed);
  }

  // Route-kind RTT (client frame in -> reply queued), success or not: the
  // fastpath family is the cost the direct path saves per batch.
  if (Ba.StartUs != 0) {
    const uint64_t Elapsed = nowUs() - Ba.StartUs;
    (Ba.Plan.singleShard() ? P.RttFastpath : P.RttSplit).addMicros(Elapsed);
  }

  std::shared_ptr<ProxyConn> Conn = std::move(Ba.Conn);
  Inflight.erase(It);
  if (Conn && !Conn->Closed.load(std::memory_order_relaxed))
    queueReply(Conn.get(), R);
}

void ProxyIo::processRetries() {
  const uint64_t Now = nowMs();
  while (!Retries.empty() && Retries.front().DueMs <= Now) {
    const Retry R = Retries.front();
    Retries.pop_front();
    auto It = Inflight.find(R.BatchId);
    if (It == Inflight.end())
      continue;
    if (It->second.Subs[R.SubIdx].State != SubState::St::Pending)
      continue;
    sendSub(R.BatchId, R.SubIdx);
  }
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

void ProxyIo::handleFrame(ProxyConn *C, std::string_view Payload) {
  Request Req;
  std::string Err;
  if (!decodeRequest(Payload, Req, Err)) {
    Response R;
    R.ReqId = Req.ReqId;
    R.St = Status::Error;
    R.Text = Err;
    queueReply(C, R);
    return;
  }
  P.Requests.fetch_add(1, std::memory_order_relaxed);
  switch (Req.Type) {
  case MsgType::Ping: {
    Response R;
    R.ReqId = Req.ReqId;
    queueReply(C, R);
    return;
  }
  case MsgType::Stats: {
    Response R;
    R.ReqId = Req.ReqId;
    R.Text = P.statsText();
    queueReply(C, R);
    return;
  }
  case MsgType::State:
    scatterState(C, Req.ReqId);
    return;
  case MsgType::Metrics:
    scatterMetrics(C, Req.ReqId);
    return;
  case MsgType::SnapState:
    relaySnapState(C, Req.ReqId, Req.Shard);
    return;
  case MsgType::Batch:
    handleBatch(C, Req, Payload);
    return;
  case MsgType::SubBatch:
  case MsgType::Subscribe:
  case MsgType::WalChunk:
  case MsgType::SnapshotXfer: {
    Response R;
    R.ReqId = Req.ReqId;
    R.St = Status::Error;
    R.Text = "not supported by the proxy";
    queueReply(C, R);
    return;
  }
  }
}

void ProxyIo::handleBatch(ProxyConn *C, Request &Req,
                          std::string_view Payload) {
  for (const Op &O : Req.Ops)
    if (!validOp(O, P.Config.UfElements)) {
      Response R;
      R.ReqId = Req.ReqId;
      R.St = Status::Error;
      R.Text = "invalid batch op";
      queueReply(C, R);
      return;
    }
  P.Batches.fetch_add(1, std::memory_order_relaxed);

  const uint64_t BatchId = NextBatchId++;
  Batch &Ba = Inflight[BatchId];
  Ba.Conn = Conns.at(C->Fd);
  Ba.StartUs = nowUs();
  Ba.ClientReqId = Req.ReqId;
  Ba.Ops = std::move(Req.Ops);
  Ba.Plan = P.Router.plan(Ba.Ops);
  Ba.Subs.resize(Ba.Plan.Subs.size());
  Ba.Outstanding = static_cast<unsigned>(Ba.Plan.Subs.size());

  if (Ba.Plan.singleShard()) {
    P.FastPath.fetch_add(1, std::memory_order_relaxed);
    // Zero-copy fast path: the Batch body past the request header is
    // `u32 num_ops | ops`, exactly the SubBatch body past the shard —
    // splice it through unparsed.
    sendSub(BatchId, 0, Payload.substr(8 + 1));
    return;
  }
  P.Split.fetch_add(1, std::memory_order_relaxed);
  const size_t NumSubs = Ba.Plan.Subs.size();
  for (size_t SI = 0; SI != NumSubs; ++SI)
    sendSub(BatchId, static_cast<unsigned>(SI));
}

void ProxyIo::scatterState(ProxyConn *C, uint64_t ReqId) {
  P.MergeReads.fetch_add(1, std::memory_order_relaxed);
  Response R;
  R.ReqId = ReqId;
  std::vector<std::string> Texts;
  for (size_t S = 0; S != Backends.size(); ++S) {
    Client Cl;
    Response Sub;
    Request Rq;
    Rq.ReqId = 1;
    Rq.Type = MsgType::State;
    if (!Cl.connect(Backends[S].Host, Backends[S].Port) ||
        !Cl.call(Rq, Sub) || Sub.St != Status::Ok) {
      R.St = Status::Error;
      R.Text = "shard " + std::to_string(S) + " unavailable for state merge";
      queueReply(C, R);
      return;
    }
    Texts.push_back(std::move(Sub.Text));
  }
  std::string Err;
  if (!mergeStateTexts(Texts, R.Text, &Err)) {
    R.St = Status::Error;
    R.Text = "state merge failed: " + Err;
  }
  queueReply(C, R);
}

void ProxyIo::scatterMetrics(ProxyConn *C, uint64_t ReqId) {
  P.MergeReads.fetch_add(1, std::memory_order_relaxed);
  Response R;
  R.ReqId = ReqId;
  std::vector<std::string> Texts;
  for (size_t S = 0; S != Backends.size(); ++S) {
    const std::string T = fetchMetricsText(Backends[S].Host, Backends[S].Port);
    if (T.empty()) {
      R.St = Status::Error;
      R.Text = "shard " + std::to_string(S) + " unavailable for metrics merge";
      queueReply(C, R);
      return;
    }
    Texts.push_back(T);
  }
  Texts.push_back(P.proxyMetricsText());
  R.Text = mergeMetricsTexts(Texts);
  queueReply(C, R);
}

void ProxyIo::relaySnapState(ProxyConn *C, uint64_t ReqId, uint32_t Shard) {
  Response R;
  R.ReqId = ReqId;
  if (Shard == ShardSelf || Shard >= Backends.size()) {
    R.St = Status::Error;
    R.Text = "snapstate wants a shard in [0," +
             std::to_string(Backends.size()) + ")";
    queueReply(C, R);
    return;
  }
  Client Cl;
  Request Rq;
  Rq.ReqId = 1;
  Rq.Type = MsgType::SnapState;
  Rq.Shard = Shard;
  Response Sub;
  if (!Cl.connect(Backends[Shard].Host, Backends[Shard].Port) ||
      !Cl.call(Rq, Sub)) {
    R.St = Status::Error;
    R.Text = "shard " + std::to_string(Shard) + " unavailable for snapstate";
    queueReply(C, R);
    return;
  }
  R.St = Sub.St;
  R.Text = std::move(Sub.Text);
  queueReply(C, R);
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void ProxyIo::drainHandoff() {
  std::vector<int> Fds;
  {
    std::lock_guard<std::mutex> Guard(HandoffMu);
    Fds.swap(NewFds);
  }
  for (const int Fd : Fds) {
    if (P.stopRequested())
      ::close(Fd);
    else
      addConnection(Fd);
  }
}

bool ProxyIo::drainComplete() {
  if (!Inflight.empty())
    return false;
  {
    std::lock_guard<std::mutex> Guard(HandoffMu);
    if (!NewFds.empty())
      return false;
  }
  for (auto &[Fd, C] : Conns)
    if (C->buffered() > 0)
      return false;
  return true;
}

void ProxyIo::run() {
  constexpr int MaxEvents = 64;
  struct epoll_event Events[MaxEvents];
  for (;;) {
    int TimeoutMs = 500;
    if (!Retries.empty()) {
      const uint64_t Now = nowMs();
      TimeoutMs = Retries.front().DueMs > Now
                      ? static_cast<int>(Retries.front().DueMs - Now)
                      : 0;
    }
    if (P.stopRequested())
      TimeoutMs = std::min(TimeoutMs, 10);
    const int N = ::epoll_wait(EpollFd, Events, MaxEvents, TimeoutMs);
    if (N < 0 && errno != EINTR)
      break;
    for (int I = 0; I < std::max(N, 0); ++I) {
      const struct epoll_event &Ev = Events[I];
      if (Ev.data.u64 == TagWake) {
        uint64_t Junk;
        while (::read(WakeFd, &Junk, sizeof(Junk)) > 0) {
        }
        continue;
      }
      if (Ev.data.u64 == TagListener) {
        if (!P.stopRequested())
          acceptNew();
        continue;
      }
      if (Ev.data.u64 >= TagBackendBase &&
          Ev.data.u64 < TagBackendBase + Backends.size()) {
        handleBackendEvent(static_cast<unsigned>(Ev.data.u64 - TagBackendBase),
                           Ev.events);
        continue;
      }
      auto *C = static_cast<ProxyConn *>(Ev.data.ptr);
      if (Conns.find(C->Fd) == Conns.end() ||
          C->Closed.load(std::memory_order_relaxed))
        continue;
      if (Ev.events & (EPOLLHUP | EPOLLERR)) {
        // HUP means the peer is fully gone: flush what we can, then drop
        // the connection. Leaving it registered spins the level-triggered
        // loop at 100% CPU for every client that ever disconnected.
        if (C->buffered() > 0)
          flushWrites(C);
        if (!C->Closed.load(std::memory_order_relaxed))
          closeConnection(C);
        continue;
      }
      if (Ev.events & EPOLLOUT)
        flushWrites(C);
      if (C->Closed.load(std::memory_order_relaxed))
        continue;
      if ((Ev.events & EPOLLIN) && !P.stopRequested())
        handleRead(C);
    }
    processRetries();
    drainHandoff();
    Dead.clear();
    if (P.stopRequested()) {
      if (Index == 0 && !ListenerClosed) {
        ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, P.ListenFd, nullptr);
        ListenerClosed = true;
      }
      if (DrainDeadlineMs == 0)
        DrainDeadlineMs = nowMs() + 5000;
      for (auto &[Fd, C] : Conns)
        updateInterest(C.get());
      if (drainComplete() || nowMs() > DrainDeadlineMs)
        break;
    }
  }
  while (!Conns.empty())
    closeConnection(Conns.begin()->second.get());
  for (size_t S = 0; S != Backends.size(); ++S)
    if (Backends[S].Fd >= 0) {
      ::close(Backends[S].Fd);
      Backends[S].Fd = -1;
    }
}

//===----------------------------------------------------------------------===//
// Proxy
//===----------------------------------------------------------------------===//

Proxy::Proxy(const ProxyConfig &Config)
    : Config(Config),
      Ring(static_cast<unsigned>(this->Config.Backends.size()),
           this->Config.VNodes, this->Config.RingSeed),
      Router(Ring) {}

Proxy::~Proxy() { stop(); }

bool Proxy::start(std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };
  if (Config.Backends.empty()) {
    if (Err)
      *Err = "no backends configured";
    return false;
  }
  if (Config.Backends.size() > MaxShards) {
    if (Err)
      *Err = "more than " + std::to_string(MaxShards) + " backends";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1)
    return Fail("inet_pton('" + Config.BindAddress + "')");
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return Fail("bind");
  if (::listen(ListenFd, 256) != 0)
    return Fail("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
                    &Len) != 0)
    return Fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  const unsigned NumIo = std::max(1u, Config.IoThreads);
  for (unsigned I = 0; I != NumIo; ++I)
    Io.push_back(std::make_unique<ProxyIo>(*this, I));
  Io[0]->registerListener(ListenFd);
  for (const std::unique_ptr<ProxyIo> &T : Io)
    IoJoins.emplace_back([&T] { T->run(); });
  Started.store(true, std::memory_order_release);
  return true;
}

void Proxy::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  for (const std::unique_ptr<ProxyIo> &T : Io)
    T->wake();
}

void Proxy::stop() {
  if (!Started.load(std::memory_order_acquire)) {
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return;
  }
  requestStop();
  for (std::thread &T : IoJoins)
    if (T.joinable())
      T.join();
  IoJoins.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  {
    std::lock_guard<std::mutex> Guard(StopM);
    Stopped.store(true, std::memory_order_release);
  }
  StopCV.notify_all();
  Started.store(false, std::memory_order_release);
}

void Proxy::waitStopped() {
  std::unique_lock<std::mutex> Guard(StopM);
  StopCV.wait(Guard,
              [this] { return Stopped.load(std::memory_order_acquire); });
}

std::string Proxy::statsText() const {
  std::string Out;
  Out += "role=proxy\n";
  Out += "shards=" + std::to_string(Config.Backends.size()) + "\n";
  Out += "ring_vnodes=" + std::to_string(Ring.vnodes()) + "\n";
  Out += "ring_seed=" + std::to_string(Ring.seed()) + "\n";
  Out += "uf_elements=" + std::to_string(Config.UfElements) + "\n";
  for (size_t S = 0; S != Config.Backends.size(); ++S)
    Out += "shard" + std::to_string(S) + "=" + Config.Backends[S].Host + ":" +
           std::to_string(Config.Backends[S].Port) + "\n";
  Out += "proxy_requests=" + std::to_string(Requests.load()) + "\n";
  Out += "proxy_batches=" + std::to_string(Batches.load()) + "\n";
  Out += "proxy_fastpath=" + std::to_string(FastPath.load()) + "\n";
  Out += "proxy_split=" + std::to_string(Split.load()) + "\n";
  Out += "proxy_subbatches=" + std::to_string(SubBatches.load()) + "\n";
  Out += "proxy_busy_retries=" + std::to_string(BusyRetries.load()) + "\n";
  Out += "proxy_redirects=" + std::to_string(Redirects.load()) + "\n";
  Out += "proxy_reconnects=" + std::to_string(Reconnects.load()) + "\n";
  Out += "proxy_shard_errors=" + std::to_string(ShardErrors.load()) + "\n";
  Out += "proxy_misroutes=" + std::to_string(Misroutes.load()) + "\n";
  Out += "proxy_merge_reads=" + std::to_string(MergeReads.load()) + "\n";
  Out += "proxy_partial_commits=" + std::to_string(PartialCommits.load()) +
         "\n";
  Out += "proxy_reconnect_backoffs=" + std::to_string(
                                           ReconnectBackoffs.load()) +
         "\n";
  return Out;
}

void AtomicLatencyHistogram::renderProm(const char *Name,
                                        std::string &Out) const {
  Out += std::string("# TYPE ") + Name + " histogram\n";
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += Buckets[I].load(std::memory_order_relaxed);
    // Bucket I holds samples in [2^I, 2^(I+1)) microseconds (bucket 0
    // from zero), so the upper bound is exclusive-rounded to 2^(I+1)-1.
    Out += std::string(Name) + "_bucket{le=\"" +
           std::to_string((1ull << (I + 1)) - 1) + "\"} " +
           std::to_string(Cum) + "\n";
  }
  Out += std::string(Name) + "_bucket{le=\"+Inf\"} " +
         std::to_string(Count.load(std::memory_order_relaxed)) + "\n";
  Out += std::string(Name) + "_sum " +
         std::to_string(TotalMicros.load(std::memory_order_relaxed)) + "\n";
  Out += std::string(Name) + "_count " +
         std::to_string(Count.load(std::memory_order_relaxed)) + "\n";
}

std::string Proxy::proxyMetricsText() const {
  std::string Out;
  auto Counter = [&Out](const char *Name, uint64_t V) {
    Out += std::string("# TYPE ") + Name + " counter\n";
    Out += std::string(Name) + " " + std::to_string(V) + "\n";
  };
  Out += "# TYPE comlat_proxy_shards gauge\n";
  Out += "comlat_proxy_shards " + std::to_string(Config.Backends.size()) +
         "\n";
  Counter("comlat_proxy_requests_total", Requests.load());
  Counter("comlat_proxy_batches_total", Batches.load());
  Counter("comlat_proxy_fastpath_total", FastPath.load());
  Counter("comlat_proxy_split_total", Split.load());
  Counter("comlat_proxy_subbatches_total", SubBatches.load());
  Counter("comlat_proxy_busy_retries_total", BusyRetries.load());
  Counter("comlat_proxy_redirects_total", Redirects.load());
  Counter("comlat_proxy_reconnects_total", Reconnects.load());
  Counter("comlat_proxy_shard_errors_total", ShardErrors.load());
  Counter("comlat_proxy_misroutes_total", Misroutes.load());
  Counter("comlat_proxy_merge_reads_total", MergeReads.load());
  Counter("comlat_proxy_partial_commits_total", PartialCommits.load());
  Counter("comlat_proxy_reconnect_backoffs_total", ReconnectBackoffs.load());
  RttFastpath.renderProm("comlat_proxy_rtt_fastpath", Out);
  RttSplit.renderProm("comlat_proxy_rtt_split", Out);
  return Out;
}
