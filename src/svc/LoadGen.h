//===- svc/LoadGen.h - comlat-serve load generator --------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the serving layer: a blocking protocol client
/// (Client), and a multi-threaded load generator (runLoadGen) driving
/// comlat-serve in either closed-loop (send, wait, repeat — TargetQps = 0)
/// or open-loop mode (send on a fixed schedule regardless of replies, the
/// load that exposes queueing). Every batch's round trip lands in a log2
/// latency histogram; the summary renders as the flat JSON the bench-smoke
/// baseline checker (ci/check_bench_baseline.py) consumes, or as CSV.
///
/// With Verify on, each thread records its committed batches (ops, reply
/// results, commit sequence number); afterwards the committed set is
/// replayed in commit-sequence order through an OracleReplica and checked
/// two ways — every reply's results must reproduce, and the replica's
/// final state must equal the server's State dump. This is the
/// serializability oracle of tests/svc, backed by the commit-order witness
/// argument in runtime/Submitter.h.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_LOADGEN_H
#define COMLAT_SVC_LOADGEN_H

#include "runtime/ExecStats.h"
#include "svc/Protocol.h"

#include <cstdint>
#include <string>

namespace comlat {
namespace svc {

/// A blocking protocol client over one TCP connection. Not thread-safe;
/// one Client per thread. Also used directly by the loopback tests.
class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p Host:\p Port; false (with \p Err set) on failure.
  bool connect(const std::string &Host, uint16_t Port,
               std::string *Err = nullptr);

  void close();

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Sends one request frame (blocking until fully written).
  bool send(const Request &R);

  /// Writes raw bytes to the socket (tests inject malformed frames).
  bool sendRaw(const std::string &Bytes);

  /// Blocks until one full response frame arrives and decodes it. False on
  /// EOF, socket error or an undecodable frame.
  bool recvResponse(Response &R);

  /// Blocks until one full *request* frame arrives and decodes it — the
  /// follower side of a subscription channel reads the leader's pushed
  /// WalChunk/SnapshotXfer frames with this. False on EOF, socket error or
  /// an undecodable frame.
  bool recvRequest(Request &R);

  /// True when the last failure was the peer going away (EOF, reset)
  /// rather than an undecodable frame — the crash harness tolerates the
  /// former and still fails on the latter.
  bool disconnected() const { return Disconnected; }

  /// Drains any responses that already arrived without blocking. Appends
  /// to \p Out; false only on EOF/socket/protocol error.
  bool pollResponses(std::vector<Response> &Out);

  /// send() + recvResponse() matching on ReqId (replies arrive in order on
  /// one connection, so this just reads the next frame).
  bool call(const Request &Req, Response &Resp);

private:
  int Fd = -1;
  std::string RecvBuf;
  size_t RecvPos = 0;
  bool Disconnected = false;

  bool peelOne(Response &R, bool &Got);
};

/// Shapes one load generation run.
struct LoadGenConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Threads = 4;
  /// Batches per thread (count mode; used when DurationSec == 0).
  uint64_t BatchesPerThread = 1000;
  /// Run duration in seconds (duration mode; overrides the batch count).
  double DurationSec = 0;
  unsigned OpsPerBatch = 8;
  /// Aggregate target batches/second across all threads; 0 = closed loop.
  double TargetQps = 0;
  uint64_t Seed = 42;
  /// Set/accumulator keys are drawn from [0, KeySpace).
  int64_t KeySpace = 1024;
  /// Must match the server's --uf-elements for verification.
  size_t UfElements = 1024;
  /// Op mix weights (set : accumulator : union-find).
  unsigned SetWeight = 6;
  unsigned AccWeight = 2;
  unsigned UfWeight = 2;
  /// Replay committed batches against an OracleReplica afterwards.
  bool Verify = false;
  /// Against a proxy: draw each batch's set keys from one shard's key
  /// pool (picked per batch), modeling key-partitioned clients — such
  /// batches stay single-shard and ride the proxy's zero-copy fast path.
  /// The pools derive from the proxy's published ring geometry, so any
  /// mix containing only set ops (and Anywhere ops like accumulator
  /// increment) plans to exactly one shard. Ignored against an unsharded
  /// server.
  bool ShardAffinity = false;
  /// Direct client-side routing (svc/Client.h): rebuild the proxy's
  /// router from its published ring geometry and send single-shard
  /// Keyed/Anywhere batches straight to their owner backend, pipelined;
  /// Pinned ops and cross-shard plans still go through the proxy.
  /// Engages only against a proxy; ignored (with a note in the outputs)
  /// against a plain server or combined with ReadHost.
  bool Direct = false;
  /// Direct mode: max in-flight batches per connection.
  unsigned DirectWindow = 16;
  /// Whether the driven server runs its accumulator on the privatized
  /// path (comlat-serve --privatize); recorded in the run's outputs so
  /// result files are self-describing.
  bool Privatized = false;
  /// Treat the server vanishing mid-run (EOF/reset) as an expected
  /// outcome instead of a protocol error: threads stop, in-flight batches
  /// count as Unacked. The crash harness kill -9s the server under load.
  bool TolerateDisconnect = false;
  /// When non-empty, every acknowledged batch (seq, ops, results) is
  /// written here after the run — the crash harness's ground truth for
  /// what the server must still know after recovery.
  std::string AckedLogPath;
  /// When ReadHost is non-empty, each closed-loop thread opens a second
  /// connection there (a follower replica) and sends ReadFraction of its
  /// batches as read-only batches to it, checking that the follower's
  /// reply stamps (its applied watermark) never go backwards on one
  /// connection — the monotonic-reads session guarantee.
  std::string ReadHost;
  uint16_t ReadPort = 0;
  double ReadFraction = 0.25;
};

/// Aggregated outcome of one run.
struct LoadGenStats {
  uint64_t Sent = 0;
  uint64_t OkReplies = 0;
  uint64_t BusyReplies = 0;
  uint64_t ErrorReplies = 0;
  /// Undecodable frames, unexpected EOF, socket errors. Always a bug
  /// somewhere; the smoke job fails on any.
  uint64_t ProtocolErrors = 0;
  /// Operations inside committed batches.
  uint64_t OpsCommitted = 0;
  double WallSec = 0;
  uint64_t Seed = 0;
  /// Batch round-trip times, microseconds.
  LatencyHistogram Rtt;
  bool VerifyRan = false;
  bool VerifyOk = false;
  /// First verification mismatch, empty when none.
  std::string VerifyDetail;
  /// Copied from LoadGenConfig::Privatized.
  bool Privatized = false;
  /// Echoed from the server's Stats frame at run start: whether it serves
  /// durably (WAL + ACK-after-fsync). Self-describing result files, like
  /// Privatized — but observed, not configured.
  bool Durable = false;
  /// The server's role as its Stats frame declares it (leader, follower
  /// or proxy; empty when the frame carries no role line).
  std::string Role;
  /// Sharded topology, echoed from a proxy's Stats frame (zero against a
  /// plain server): shard count and the ring geometry — everything needed
  /// to rebuild the proxy's router client-side.
  uint64_t Shards = 0;
  uint64_t RingVNodes = 0;
  uint64_t RingSeed = 0;
  /// Whether the run actually drew keys shard-locally (ShardAffinity
  /// requested and the target was a proxy).
  bool ShardAffinity = false;
  /// Threads that lost the server mid-run (TolerateDisconnect only).
  uint64_t Disconnects = 0;
  /// Batches sent but never acknowledged before a tolerated disconnect;
  /// the durability contract says nothing about these.
  uint64_t Unacked = 0;
  /// Redirect replies (a follower refusing a mutation). Counted apart from
  /// errors: against a leader they are a bug, against a follower they are
  /// the contract.
  uint64_t RedirectReplies = 0;
  /// Read-only batches answered by the follower (ReadHost mode).
  uint64_t FollowerReads = 0;
  /// Follower reply stamps observed going backwards on one connection;
  /// any is a monotonic-reads violation and fails the run.
  uint64_t MonotonicViolations = 0;
  /// Direct routing requested (LoadGenConfig::Direct) and actually
  /// engaged (the target was a proxy with a routable ring).
  bool DirectRequested = false;
  bool Direct = false;
  /// ShardClient counters, summed across threads (direct mode only).
  uint64_t DirectBatches = 0;
  uint64_t ProxiedBatches = 0;
  uint64_t ClientMisroutes = 0;
  uint64_t ClientRedirects = 0;
  uint64_t ClientReconnects = 0;
  uint64_t ClientRebootstraps = 0;
  uint64_t ClientBusyRetries = 0;
  /// Largest observed per-connection in-flight depth across all threads —
  /// the proof the pipelining window actually engaged.
  uint64_t DirectMaxInflight = 0;
  /// Round trips split by route kind, mirroring the proxy's
  /// comlat_proxy_rtt_fastpath / _split families client-side: fastpath =
  /// replies carrying at most one shard annotation (direct or proxied
  /// single-shard), split = multi-shard replies.
  LatencyHistogram RttFast;
  LatencyHistogram RttSplit;

  double achievedQps() const { return WallSec > 0 ? Sent / WallSec : 0; }

  /// Flat JSON object (ci/check_bench_baseline.py's format).
  std::string toJson() const;
  /// CSV: a header line plus one data row.
  std::string toCsv() const;
  /// Human-readable one-per-line summary.
  std::string toText() const;
};

/// Runs the configured load against a live server. On Verify, also issues
/// a State request after the load quiesces and replays the oracle.
LoadGenStats runLoadGen(const LoadGenConfig &Config);

/// Fetches the server's Prometheus metrics dump (empty string on error).
std::string fetchMetricsText(const std::string &Host, uint16_t Port);

/// Fetches the server's Stats frame (`key=value` lines; empty on error).
std::string fetchStatsText(const std::string &Host, uint16_t Port);

/// Polls connect + Ping until the server answers or \p TimeoutSec passes.
/// The CI jobs gate on this instead of sleeping fixed amounts.
bool waitReady(const std::string &Host, uint16_t Port, double TimeoutSec);

/// Inputs of the post-crash recovery audit.
struct RecoveryCheckConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// The restarted server's WAL/snapshot directory (read directly).
  std::string WalDir;
  /// Acked-batch log a previous loadgen run wrote (AckedLogPath).
  std::string AckedLogPath;
  size_t UfElements = 1024;
};

/// Outcome of runRecoveryCheck.
struct RecoveryCheckResult {
  bool Ok = false;
  /// First violated property, empty when Ok.
  std::string Detail;
  uint64_t AckedBatches = 0;
  uint64_t WalRecords = 0;
  uint64_t SnapshotSeq = 0;
  uint64_t RecoveredSeq = 0;
};

/// The crash harness's zero-acknowledged-loss audit, run against a
/// restarted idle server. Checks: the server recovered at least to the
/// largest acknowledged sequence; every acknowledged batch above the
/// snapshot watermark sits in the WAL with identical ops and results
/// (below it, the snapshot subsumes it); serially replaying snapshot +
/// WAL through an OracleReplica reproduces every logged result and the
/// server's live State dump.
RecoveryCheckResult runRecoveryCheck(const RecoveryCheckConfig &Config);

/// Inputs of the follower replication audit (comlat-loadgen
/// --check-follower).
struct FollowerCheckConfig {
  /// The leader being replicated from.
  std::string LeaderHost = "127.0.0.1";
  uint16_t LeaderPort = 0;
  /// The follower under audit.
  std::string FollowerHost = "127.0.0.1";
  uint16_t FollowerPort = 0;
  /// How long to wait for the follower to reach the leader's durable
  /// watermark before declaring it stuck.
  double CatchUpTimeoutSec = 30;
  /// When non-empty, the leader's WAL/snapshot directory is read directly
  /// and serially replayed through the oracle as an independent witness of
  /// the follower's state (leader and follower could otherwise agree on a
  /// wrong answer).
  std::string LeaderWalDir;
  size_t UfElements = 1024;
};

/// Outcome of runFollowerCheck.
struct FollowerCheckResult {
  bool Ok = false;
  /// First violated property, empty when Ok.
  std::string Detail;
  /// The leader's durable watermark the follower was held to.
  uint64_t LeaderDurableSeq = 0;
  /// The follower's applied watermark once caught up.
  uint64_t FollowerAppliedSeq = 0;
};

/// The replication audit, run against a quiesced leader + follower pair:
/// the follower must catch up to the leader's durable watermark, serve
/// reads stamped with monotonically non-decreasing watermarks, Redirect
/// mutations at the leader, and hold a State dump equal to the leader's
/// (and, with LeaderWalDir, to an independent snapshot+WAL oracle replay).
FollowerCheckResult runFollowerCheck(const FollowerCheckConfig &Config);

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_LOADGEN_H
