//===- svc/comlat_serve.cpp - The comlat service daemon --------------------===//
//
// Serves the hosted boosted structures (set, accumulator, union-find) over
// TCP; every batch frame is one speculative transaction on the
// gatekeeper/abstract-lock path. See svc/Protocol.h for the wire format
// and DESIGN.md §3.7 for the threading model.
//
//   comlat-serve --port=7411 --io-threads=2 --workers=4
//   comlat-serve --port=0 --port-file=/tmp/port   # ephemeral, CI style
//   comlat-serve --durable --wal-dir=/var/lib/comlat   # WAL + snapshots
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish every admitted
// transaction, flush every reply, exit 0. SIGUSR1 takes a snapshot now
// (durable mode; ignored otherwise).
//
//===----------------------------------------------------------------------===//

#include "obs/ObsCli.h"
#include "support/Options.h"
#include "svc/Server.h"

#include <csignal>
#include <cstdio>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  Opts.checkKnown({"port", "bind", "port-file", "io-threads", "workers",
                   "queue", "idle-timeout-ms", "max-write-buffer",
                   "uf-elements", "max-attempts", "privatize", "durable",
                   "wal-dir", "wal-sync-interval", "wal-group-max",
                   "snapshot-interval-ms", "trace", "trace-events", "metrics",
                   "metrics-json"});
  obs::ScopedObs Obs(Opts);

  svc::ServerConfig Config;
  Config.BindAddress = Opts.getString("bind", "127.0.0.1");
  Config.Port = static_cast<uint16_t>(Opts.getUInt("port", 7411));
  Config.IoThreads = static_cast<unsigned>(Opts.getUInt("io-threads", 2));
  Config.Workers = static_cast<unsigned>(Opts.getUInt("workers", 4));
  Config.QueueCapacity = Opts.getUInt("queue", 1024);
  Config.IdleTimeoutMs =
      static_cast<unsigned>(Opts.getUInt("idle-timeout-ms", 0));
  Config.MaxWriteBuffered = Opts.getUInt("max-write-buffer", 256 * 1024);
  Config.UfElements = Opts.getUInt("uf-elements", 1024);
  Config.MaxAttempts = static_cast<unsigned>(Opts.getUInt("max-attempts", 0));
  Config.PrivatizeAcc = Opts.getBool("privatize");
  Config.Durable = Opts.getBool("durable");
  Config.WalDir = Opts.getString("wal-dir", "");
  Config.WalSyncIntervalUs =
      static_cast<unsigned>(Opts.getUInt("wal-sync-interval", 1000));
  Config.WalGroupMax =
      static_cast<unsigned>(Opts.getUInt("wal-group-max", 64));
  Config.SnapshotIntervalMs =
      static_cast<unsigned>(Opts.getUInt("snapshot-interval-ms", 0));

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait() below is the only receiver.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  sigaddset(&Sigs, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  svc::Server Srv(Config);
  std::string Err;
  if (!Srv.start(&Err)) {
    std::fprintf(stderr, "comlat-serve: %s\n", Err.c_str());
    return 1;
  }
  std::printf("comlat-serve listening on %s:%u%s%s\n",
              Config.BindAddress.c_str(), unsigned(Srv.port()),
              Config.PrivatizeAcc ? " (privatized accumulator)" : "",
              Config.Durable ? " (durable)" : "");
  if (Config.Durable)
    std::printf("comlat-serve recovered through seq %llu\n",
                static_cast<unsigned long long>(Srv.recoveredSeq()));
  std::fflush(stdout);

  const std::string PortFile = Opts.getString("port-file", "");
  if (!PortFile.empty()) {
    if (std::FILE *F = std::fopen(PortFile.c_str(), "w")) {
      std::fprintf(F, "%u\n", unsigned(Srv.port()));
      std::fclose(F);
    } else {
      std::fprintf(stderr, "comlat-serve: cannot write %s\n",
                   PortFile.c_str());
      Srv.stop();
      return 1;
    }
  }

  int Sig = 0;
  for (;;) {
    sigwait(&Sigs, &Sig);
    if (Sig != SIGUSR1)
      break;
    // Operator-triggered snapshot; failure leaves serving untouched.
    std::fprintf(stderr, "comlat-serve: SIGUSR1, snapshot %s\n",
                 Srv.snapshotNow() ? "taken" : "FAILED");
  }
  std::fprintf(stderr, "comlat-serve: caught %s, draining\n",
               Sig == SIGTERM ? "SIGTERM" : "SIGINT");
  Srv.stop();
  std::fprintf(stderr, "comlat-serve: drained, bye\n");
  return 0;
}
