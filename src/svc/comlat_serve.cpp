//===- svc/comlat_serve.cpp - The comlat service daemon --------------------===//
//
// Serves the hosted boosted structures (set, accumulator, union-find) over
// TCP; every batch frame is one speculative transaction on the
// gatekeeper/abstract-lock path. See svc/Protocol.h for the wire format
// and DESIGN.md §3.7 for the threading model.
//
//   comlat-serve --port=7411 --io-threads=2 --workers=4
//   comlat-serve --port=0 --port-file=/tmp/port   # ephemeral, CI style
//   comlat-serve --durable --wal-dir=/var/lib/comlat   # WAL + snapshots
//   comlat-serve --follow=127.0.0.1:7411 --port=7412   # read-only replica
//   comlat-serve --port=7481 --shard-id=0   # ring slot behind comlat-shard
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish every admitted
// transaction, flush every reply, exit 0. SIGUSR1 takes a snapshot now
// (durable mode; ignored otherwise). A follower whose replication fails
// fatally (divergence, leader refusal) drains and exits 7.
//
//===----------------------------------------------------------------------===//

#include "obs/ObsCli.h"
#include "support/Options.h"
#include "support/PortFile.h"
#include "svc/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  Opts.checkKnown({"port", "bind", "port-file", "io-threads", "workers",
                   "queue", "idle-timeout-ms", "max-write-buffer",
                   "uf-elements", "max-attempts", "privatize", "durable",
                   "wal-dir", "wal-sync-interval", "wal-group-max",
                   "snapshot-interval-ms", "follow", "shard-id", "trace",
                   "trace-events", "metrics", "metrics-json"});
  obs::ScopedObs Obs(Opts);

  svc::ServerConfig Config;
  Config.BindAddress = Opts.getString("bind", "127.0.0.1");
  Config.Port = static_cast<uint16_t>(Opts.getUInt("port", 7411));
  Config.IoThreads = static_cast<unsigned>(Opts.getUInt("io-threads", 2));
  Config.Workers = static_cast<unsigned>(Opts.getUInt("workers", 4));
  Config.QueueCapacity = Opts.getUInt("queue", 1024);
  Config.IdleTimeoutMs =
      static_cast<unsigned>(Opts.getUInt("idle-timeout-ms", 0));
  Config.MaxWriteBuffered = Opts.getUInt("max-write-buffer", 256 * 1024);
  Config.UfElements = Opts.getUInt("uf-elements", 1024);
  Config.MaxAttempts = static_cast<unsigned>(Opts.getUInt("max-attempts", 0));
  Config.PrivatizeAcc = Opts.getBool("privatize");
  Config.Durable = Opts.getBool("durable");
  Config.WalDir = Opts.getString("wal-dir", "");
  Config.WalSyncIntervalUs =
      static_cast<unsigned>(Opts.getUInt("wal-sync-interval", 1000));
  Config.WalGroupMax =
      static_cast<unsigned>(Opts.getUInt("wal-group-max", 64));
  Config.SnapshotIntervalMs =
      static_cast<unsigned>(Opts.getUInt("snapshot-interval-ms", 0));
  Config.ShardId = static_cast<int>(Opts.getInt("shard-id", -1));
  if (Config.ShardId >= static_cast<int>(svc::MaxShards)) {
    std::fprintf(stderr, "comlat-serve: --shard-id must be < %u\n",
                 svc::MaxShards);
    return 1;
  }
  const std::string Follow = Opts.getString("follow", "");
  if (!Follow.empty()) {
    const size_t Colon = Follow.rfind(':');
    unsigned long FollowPort = 0;
    if (Colon != std::string::npos)
      FollowPort = std::strtoul(Follow.c_str() + Colon + 1, nullptr, 10);
    if (Colon == std::string::npos || Colon == 0 || FollowPort == 0 ||
        FollowPort > 65535) {
      std::fprintf(stderr,
                   "comlat-serve: --follow wants host:port, got '%s'\n",
                   Follow.c_str());
      return 1;
    }
    Config.FollowHost = Follow.substr(0, Colon);
    Config.FollowPort = static_cast<uint16_t>(FollowPort);
  }

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait() below is the only receiver.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  sigaddset(&Sigs, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  svc::Server Srv(Config);
  std::string Err;
  if (!Srv.start(&Err)) {
    std::fprintf(stderr, "comlat-serve: %s\n", Err.c_str());
    return 1;
  }
  std::printf("comlat-serve listening on %s:%u%s%s%s\n",
              Config.BindAddress.c_str(), unsigned(Srv.port()),
              Config.PrivatizeAcc ? " (privatized accumulator)" : "",
              Config.Durable ? " (durable)" : "",
              Srv.isFollower() ? " (follower)" : "");
  if (Config.Durable)
    std::printf("comlat-serve recovered through seq %llu\n",
                static_cast<unsigned long long>(Srv.recoveredSeq()));
  std::fflush(stdout);

  // Published atomically (temp + rename): CI polls this file and must
  // never read a half-written port.
  const std::string PortFile = Opts.getString("port-file", "");
  if (!PortFile.empty() && !writePortFile(PortFile, Srv.port())) {
    std::fprintf(stderr, "comlat-serve: cannot write %s\n", PortFile.c_str());
    Srv.stop();
    return 1;
  }

  // Poll rather than park: a follower can also be stopped from inside
  // (fatal replication failure calls requestStop()), which sigwait alone
  // would never observe.
  int Sig = 0;
  const struct timespec Tick = {0, 200 * 1000 * 1000};
  for (;;) {
    Sig = sigtimedwait(&Sigs, nullptr, &Tick);
    if (Sig < 0) { // timeout (or EINTR): check for an internal stop
      if (Srv.stopRequested())
        break;
      continue;
    }
    if (Sig != SIGUSR1)
      break;
    // Operator-triggered snapshot; failure leaves serving untouched.
    std::fprintf(stderr, "comlat-serve: SIGUSR1, snapshot %s\n",
                 Srv.snapshotNow() ? "taken" : "FAILED");
  }
  std::fprintf(stderr, "comlat-serve: %s, draining\n",
               Sig == SIGTERM   ? "caught SIGTERM"
               : Sig == SIGINT  ? "caught SIGINT"
                                : "stop requested");
  Srv.stop();
  if (Srv.replicationFailed()) {
    std::fprintf(stderr, "comlat-serve: exiting on replication failure\n");
    return 7;
  }
  std::fprintf(stderr, "comlat-serve: drained, bye\n");
  return 0;
}
