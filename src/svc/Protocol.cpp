//===- svc/Protocol.cpp - comlat-serve wire protocol -----------------------===//

#include "svc/Protocol.h"

#include <cstdlib>
#include <cstring>

using namespace comlat;
using namespace comlat::svc;

namespace {

void putU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putI64(std::string &Out, int64_t V) { putU64(Out, static_cast<uint64_t>(V)); }

/// Bounds-checked little-endian reader over a payload view.
class Reader {
public:
  explicit Reader(std::string_view Buf) : Buf(Buf) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Buf.size())
      return false;
    V = static_cast<uint8_t>(Buf[Pos++]);
    return true;
  }

  bool u32(uint32_t &V) {
    if (Pos + 4 > Buf.size())
      return false;
    V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
    Pos += 4;
    return true;
  }

  bool u64(uint64_t &V) {
    if (Pos + 8 > Buf.size())
      return false;
    V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
    Pos += 8;
    return true;
  }

  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }

  bool bytes(size_t N, std::string_view &V) {
    if (Pos + N > Buf.size())
      return false;
    V = Buf.substr(Pos, N);
    Pos += N;
    return true;
  }

  bool atEnd() const { return Pos == Buf.size(); }

private:
  std::string_view Buf;
  size_t Pos = 0;
};

void frameOut(std::string &Out, const std::string &Payload) {
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out += Payload;
}

} // namespace

void svc::encodeRequest(const Request &R, std::string &Out) {
  std::string P;
  putU64(P, R.ReqId);
  P.push_back(static_cast<char>(R.Type));
  switch (R.Type) {
  case MsgType::SubBatch:
    putU32(P, R.Shard);
    [[fallthrough]];
  case MsgType::Batch:
    putU32(P, static_cast<uint32_t>(R.Ops.size()));
    for (const Op &O : R.Ops) {
      P.push_back(static_cast<char>(O.Obj));
      P.push_back(static_cast<char>(O.Method));
      putI64(P, O.A);
      putI64(P, O.B);
    }
    break;
  case MsgType::SnapState:
    putU32(P, R.Shard);
    break;
  case MsgType::Subscribe:
    putU64(P, R.Seq);
    break;
  case MsgType::WalChunk:
    putU64(P, R.Seq);
    putU64(P, R.StampUs);
    putU32(P, static_cast<uint32_t>(R.Blob.size()));
    P += R.Blob;
    break;
  case MsgType::SnapshotXfer:
    putU64(P, R.Seq);
    P.push_back(static_cast<char>(R.Last));
    putU32(P, static_cast<uint32_t>(R.Blob.size()));
    P += R.Blob;
    break;
  default:
    break; // header-only request types
  }
  frameOut(Out, P);
}

void svc::encodeResponse(const Response &R, std::string &Out) {
  std::string P;
  putU64(P, R.ReqId);
  P.push_back(static_cast<char>(R.St));
  putU64(P, R.CommitSeq);
  putU32(P, static_cast<uint32_t>(R.Results.size()));
  for (const int64_t V : R.Results)
    putI64(P, V);
  putU32(P, static_cast<uint32_t>(R.Text.size()));
  P += R.Text;
  if (!R.Shards.empty()) {
    putU32(P, static_cast<uint32_t>(R.Shards.size()));
    for (const ShardCommit &S : R.Shards) {
      putU32(P, S.Shard);
      putU64(P, S.CommitSeq);
      putU32(P, S.NumOps);
    }
  }
  frameOut(Out, P);
}

FrameResult svc::peelFrame(std::string_view Buf, std::string_view &Payload,
                           size_t &Consumed) {
  if (Buf.size() < 4)
    return FrameResult::NeedMore;
  uint32_t Len = 0;
  for (unsigned I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[I])) << (8 * I);
  if (Len > MaxFramePayload)
    return FrameResult::Malformed;
  if (Buf.size() < 4 + static_cast<size_t>(Len))
    return FrameResult::NeedMore;
  Payload = Buf.substr(4, Len);
  Consumed = 4 + static_cast<size_t>(Len);
  return FrameResult::Ok;
}

bool svc::decodeRequest(std::string_view Payload, Request &Out,
                        std::string &Err) {
  Reader R(Payload);
  uint8_t Type = 0;
  if (!R.u64(Out.ReqId) || !R.u8(Type)) {
    Err = "truncated request header";
    return false;
  }
  switch (Type) {
  case static_cast<uint8_t>(MsgType::SubBatch):
  case static_cast<uint8_t>(MsgType::Batch): {
    const bool Sub = Type == static_cast<uint8_t>(MsgType::SubBatch);
    Out.Type = Sub ? MsgType::SubBatch : MsgType::Batch;
    if (Sub && !R.u32(Out.Shard)) {
      Err = "truncated sub-batch header";
      return false;
    }
    if (Sub && Out.Shard >= MaxShards) {
      Err = "sub-batch shard out of range";
      return false;
    }
    uint32_t NumOps = 0;
    if (!R.u32(NumOps)) {
      Err = "truncated batch header";
      return false;
    }
    if (NumOps == 0 || NumOps > MaxBatchOps) {
      Err = "batch op count out of range";
      return false;
    }
    Out.Ops.clear();
    Out.Ops.reserve(NumOps);
    for (uint32_t I = 0; I != NumOps; ++I) {
      Op O;
      if (!R.u8(O.Obj) || !R.u8(O.Method) || !R.i64(O.A) || !R.i64(O.B)) {
        Err = "truncated batch op";
        return false;
      }
      Out.Ops.push_back(O);
    }
    break;
  }
  case static_cast<uint8_t>(MsgType::Metrics):
    Out.Type = MsgType::Metrics;
    break;
  case static_cast<uint8_t>(MsgType::State):
    Out.Type = MsgType::State;
    break;
  case static_cast<uint8_t>(MsgType::Ping):
    Out.Type = MsgType::Ping;
    break;
  case static_cast<uint8_t>(MsgType::Stats):
    Out.Type = MsgType::Stats;
    break;
  case static_cast<uint8_t>(MsgType::SnapState):
    Out.Type = MsgType::SnapState;
    if (!R.u32(Out.Shard)) {
      Err = "truncated snapstate body";
      return false;
    }
    if (Out.Shard >= MaxShards && Out.Shard != ShardSelf) {
      Err = "snapstate shard out of range";
      return false;
    }
    break;
  case static_cast<uint8_t>(MsgType::Subscribe):
    Out.Type = MsgType::Subscribe;
    if (!R.u64(Out.Seq)) {
      Err = "truncated subscribe body";
      return false;
    }
    break;
  case static_cast<uint8_t>(MsgType::WalChunk): {
    Out.Type = MsgType::WalChunk;
    uint32_t NumBytes = 0;
    std::string_view Blob;
    if (!R.u64(Out.Seq) || !R.u64(Out.StampUs) || !R.u32(NumBytes) ||
        !R.bytes(NumBytes, Blob)) {
      Err = "truncated wal chunk";
      return false;
    }
    Out.Blob.assign(Blob);
    break;
  }
  case static_cast<uint8_t>(MsgType::SnapshotXfer): {
    Out.Type = MsgType::SnapshotXfer;
    uint32_t NumBytes = 0;
    std::string_view Blob;
    if (!R.u64(Out.Seq) || !R.u8(Out.Last) || !R.u32(NumBytes) ||
        !R.bytes(NumBytes, Blob)) {
      Err = "truncated snapshot chunk";
      return false;
    }
    if (Out.Last > 1) {
      Err = "snapshot chunk last flag out of range";
      return false;
    }
    Out.Blob.assign(Blob);
    break;
  }
  default:
    Err = "unknown request type";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after request";
    return false;
  }
  return true;
}

bool svc::decodeResponse(std::string_view Payload, Response &Out) {
  Reader R(Payload);
  uint8_t St = 0;
  uint32_t NumResults = 0;
  if (!R.u64(Out.ReqId) || !R.u8(St) || !R.u64(Out.CommitSeq) ||
      !R.u32(NumResults))
    return false;
  if (St > static_cast<uint8_t>(Status::Redirect))
    return false;
  Out.St = static_cast<Status>(St);
  if (NumResults > MaxBatchOps)
    return false;
  Out.Results.clear();
  Out.Results.reserve(NumResults);
  for (uint32_t I = 0; I != NumResults; ++I) {
    int64_t V = 0;
    if (!R.i64(V))
      return false;
    Out.Results.push_back(V);
  }
  uint32_t TextLen = 0;
  if (!R.u32(TextLen))
    return false;
  std::string_view Text;
  if (!R.bytes(TextLen, Text))
    return false;
  Out.Text.assign(Text);
  Out.Shards.clear();
  if (R.atEnd())
    return true;
  // Shard-annotation trailer: present iff any bytes remain, and then it
  // must parse completely and exhaust the payload.
  uint32_t NumShards = 0;
  if (!R.u32(NumShards) || NumShards == 0 || NumShards > MaxShards)
    return false;
  Out.Shards.reserve(NumShards);
  for (uint32_t I = 0; I != NumShards; ++I) {
    ShardCommit S;
    if (!R.u32(S.Shard) || !R.u64(S.CommitSeq) || !R.u32(S.NumOps))
      return false;
    if (S.Shard >= MaxShards || S.NumOps > MaxBatchOps)
      return false;
    Out.Shards.push_back(S);
  }
  return R.atEnd();
}

bool svc::validOp(const Op &O, size_t UfElements) {
  switch (O.Obj) {
  case static_cast<uint8_t>(ObjectId::Set):
    return O.Method <= SetContains;
  case static_cast<uint8_t>(ObjectId::Acc):
    return O.Method <= AccRead;
  case static_cast<uint8_t>(ObjectId::Uf): {
    if (O.Method > UfUnion)
      return false;
    const int64_t N = static_cast<int64_t>(UfElements);
    if (O.A < 0 || O.A >= N)
      return false;
    return O.Method == UfFind || (O.B >= 0 && O.B < N);
  }
  default:
    return false;
  }
}

bool svc::mutatingOp(const Op &O) {
  switch (O.Obj) {
  case static_cast<uint8_t>(ObjectId::Set):
    return O.Method != SetContains;
  case static_cast<uint8_t>(ObjectId::Acc):
    return O.Method != AccRead;
  case static_cast<uint8_t>(ObjectId::Uf):
    return O.Method != UfFind;
  default:
    return true; // unknown ops never reach here; fail safe anyway
  }
}

bool svc::parseLeaderText(const std::string &Text, std::string &Host,
                          uint16_t &Port) {
  if (Text.rfind("leader=", 0) != 0)
    return false;
  const std::string Spec = Text.substr(7);
  const size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0)
    return false;
  const unsigned long P = std::strtoul(Spec.c_str() + Colon + 1, nullptr, 10);
  if (P == 0 || P > 65535)
    return false;
  Host = Spec.substr(0, Colon);
  Port = static_cast<uint16_t>(P);
  return true;
}
