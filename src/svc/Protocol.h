//===- svc/Protocol.h - comlat-serve wire protocol --------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol spoken between comlat-serve and its
/// clients (comlat-loadgen, the loopback tests). One frame is one request
/// or one reply:
///
///   frame    := u32 payload_len | payload            (little-endian)
///   request  := u64 req_id | u8 type | body
///     Batch(1)   body: u32 num_ops | num_ops * op    (op = u8 obj |
///                u8 method | i64 a | i64 b — 18 bytes)
///     Metrics(2) body: empty  -> reply text is the Prometheus export
///     State(3)   body: empty  -> reply text is the abstract-state dump
///                (meaningful only when the server is quiesced)
///     Ping(4)    body: empty
///     Stats(5)   body: empty  -> reply text is `key=value` lines of
///                serving-mode facts (durable, privatized, uf_elements,
///                wal_* sequences) — cheap enough for every client to
///                fetch at connect time, unlike the full Metrics export
///     Subscribe(6)    body: u64 from_seq — a follower asking the leader
///                to ship the WAL tail past from_seq. Replied with a
///                normal response: Ok carries the leader's durable
///                watermark in commit_seq (and `snapshot=<seq>` in text
///                when a SnapshotXfer will precede the tail); Error
///                carries the refusal reason. After an Ok reply the
///                connection becomes a one-way push channel.
///     WalChunk(7)     body: u64 durable_seq | u64 stamp_us | u32 nbytes |
///                bytes — leader-to-follower push, never replied to. The
///                bytes are zero or more concatenated WAL records in
///                encodeWalRecord framing; an empty chunk is a heartbeat
///                carrying the current durable watermark.
///     SnapshotXfer(8) body: u64 snap_seq | u8 last | u32 nbytes | bytes —
///                one chunk of the bootstrap snapshot's state text, pushed
///                before the tail; last=1 marks the final chunk.
///     SubBatch(9)     body: u32 shard | u32 num_ops | num_ops * op — a
///                proxy-to-backend batch envelope: identical transaction
///                semantics to Batch, but stamped with the ring slot the
///                router computed. A backend started with --shard-id
///                refuses a mismatched envelope (catches mis-wired rings)
///                and echoes its shard in the reply's shard annotations.
///     SnapState(10)   body: u32 shard — full snapshot-format state dump
///                (renderSnapshotText framing, UF ranks included) in the
///                reply text. shard = ShardSelf asks a backend for its own
///                state; a concrete shard asks the proxy to relay to that
///                backend. Meaningful only when writes are quiesced.
///   response := u64 req_id | u8 status | u64 commit_seq |
///               u32 num_results | num_results * i64 | u32 text_len | text
///               [ u32 num_shards | num_shards * (u32 shard |
///                 u64 commit_seq | u32 num_ops) ]
///
/// The bracketed shard-annotation trailer is optional: absent on replies
/// from unsharded paths (decoding stays backward compatible), present on
/// SubBatch replies (one entry) and on proxy Batch replies (one entry per
/// sub-batch, ascending shard order, each carrying that backend's own
/// commit_seq and the number of ops routed there).
///
/// A Batch frame is one transaction: all its operations commit atomically
/// through the executor/gatekeeper path, its reply carries one i64 result
/// per operation plus the server's commit sequence number (a
/// conflict-consistent serial position — see runtime/Submitter.h). Status
/// Busy means the admission queue shed the frame; Error carries a
/// diagnostic in the text field; Redirect means a follower refused a
/// mutating batch and names the leader (`leader=<host>:<port>`) in the
/// text field. Responses are self-describing (every field always present)
/// so decoding never depends on request context.
///
/// Framing errors are unrecoverable on a byte stream (there is no resync
/// point), so an oversized length prefix closes the connection after an
/// error reply; a well-framed but semantically invalid payload only fails
/// the one frame.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_PROTOCOL_H
#define COMLAT_SVC_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace comlat {
namespace svc {

/// Hard frame bounds; frames beyond these are malformed by definition.
inline constexpr size_t MaxFramePayload = 1u << 20;
inline constexpr uint32_t MaxBatchOps = 4096;
inline constexpr uint32_t MaxShards = 256;

/// SnapState shard selector meaning "the server you are talking to".
inline constexpr uint32_t ShardSelf = 0xFFFFFFFFu;

/// Request frame types.
enum class MsgType : uint8_t {
  Batch = 1,
  Metrics = 2,
  State = 3,
  Ping = 4,
  Stats = 5,
  Subscribe = 6,
  WalChunk = 7,
  SnapshotXfer = 8,
  SubBatch = 9,
  SnapState = 10,
};

/// Reply status.
enum class Status : uint8_t { Ok = 0, Busy = 1, Error = 2, Redirect = 3 };

/// Hosted structures addressable by batch operations.
enum class ObjectId : uint8_t { Set = 0, Acc = 1, Uf = 2 };

/// Per-object method selectors.
enum SetMethod : uint8_t { SetAdd = 0, SetRemove = 1, SetContains = 2 };
enum AccMethod : uint8_t { AccIncrement = 0, AccRead = 1 };
enum UfMethod : uint8_t { UfFind = 0, UfUnion = 1 };

/// One operation of a batch. A is the key/amount/element, B the second
/// element of a union (unused otherwise).
struct Op {
  uint8_t Obj = 0;
  uint8_t Method = 0;
  int64_t A = 0;
  int64_t B = 0;
};

/// A decoded request frame.
struct Request {
  uint64_t ReqId = 0;
  MsgType Type = MsgType::Ping;
  std::vector<Op> Ops; // Batch / SubBatch
  /// SubBatch: the ring slot the router computed for these ops.
  /// SnapState: which shard's state to dump (ShardSelf = this server's).
  uint32_t Shard = 0;
  /// Subscribe: the subscriber's applied watermark (ship records > Seq).
  /// WalChunk: the shipper's durable watermark at send time.
  /// SnapshotXfer: the snapshot's commit-sequence watermark.
  uint64_t Seq = 0;
  /// WalChunk only: sender wall clock in microseconds (lag estimation).
  uint64_t StampUs = 0;
  /// SnapshotXfer only: 1 on the final chunk of the transfer.
  uint8_t Last = 0;
  /// WalChunk: concatenated encodeWalRecord frames. SnapshotXfer: one
  /// chunk of the snapshot state text.
  std::string Blob;
};

/// One entry of a reply's shard-annotation trailer: \p NumOps ops of the
/// request committed on \p Shard as that backend's transaction \p CommitSeq.
struct ShardCommit {
  uint32_t Shard = 0;
  uint64_t CommitSeq = 0;
  uint32_t NumOps = 0;
};

/// A decoded response frame.
struct Response {
  uint64_t ReqId = 0;
  Status St = Status::Ok;
  uint64_t CommitSeq = 0;
  std::vector<int64_t> Results; // one per batch op
  std::string Text;             // metrics/state payload or error detail
  /// Optional shard-annotation trailer (empty on unsharded replies). On a
  /// partially-committed split batch (Status Error) the entries name the
  /// sub-batches that did commit even though Results is empty.
  std::vector<ShardCommit> Shards;
};

/// Appends the frame encoding of \p R to \p Out.
void encodeRequest(const Request &R, std::string &Out);
void encodeResponse(const Response &R, std::string &Out);

/// Result of trying to peel one frame off a stream buffer.
enum class FrameResult {
  Ok,        ///< \p Payload holds one complete frame payload.
  NeedMore,  ///< The buffer holds only a partial frame.
  Malformed, ///< The length prefix exceeds MaxFramePayload: unrecoverable.
};

/// Examines the front of \p Buf. On Ok, \p Payload views the frame's
/// payload bytes inside \p Buf and \p Consumed is the full frame size
/// (prefix + payload) to drop from the buffer.
FrameResult peelFrame(std::string_view Buf, std::string_view &Payload,
                      size_t &Consumed);

/// Decodes a request payload. On failure returns false and sets \p Err;
/// \p Out.ReqId is still filled when at least the header was readable (so
/// the error reply can echo it).
bool decodeRequest(std::string_view Payload, Request &Out, std::string &Err);

/// Decodes a response payload; returns false on any structural mismatch.
bool decodeResponse(std::string_view Payload, Response &Out);

/// Structural validity of one batch op: known object, known method, and —
/// for union-find ops — elements within [0, UfElements).
bool validOp(const Op &O, size_t UfElements);

/// Whether \p O can change hosted state. Followers serve the read-only
/// vocabulary (SetContains / AccRead / UfFind) and Redirect anything else.
bool mutatingOp(const Op &O);

/// Parses a Redirect reply's `leader=<host>:<port>` text into \p Host and
/// \p Port; false on anything else. Shared by everyone that chases
/// Redirects (the proxy's slot re-pointing, ShardClient's, the loadgen).
bool parseLeaderText(const std::string &Text, std::string &Host,
                     uint16_t &Port);

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_PROTOCOL_H
