//===- svc/Wal.cpp - Commit-sequence write-ahead log -----------------------===//

#include "svc/Wal.h"

#include "obs/MetricsRegistry.h"
#include "support/Crc32.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// The comlat_wal_* instrumentation, registered once per process.
struct WalMetrics {
  obs::Counter *Appends;
  obs::Counter *Fsyncs;
  obs::Counter *Bytes;
  obs::Histogram *GroupSize;
  obs::Counter *SegmentsCreated;
  obs::Counter *SegmentsDeleted;
  obs::Gauge *DurableSeq;

  static WalMetrics &get() {
    static WalMetrics M = [] {
      obs::MetricsRegistry &R = obs::MetricsRegistry::global();
      WalMetrics N;
      N.Appends = R.counter("comlat_wal_appends_total");
      N.Fsyncs = R.counter("comlat_wal_fsyncs_total");
      N.Bytes = R.counter("comlat_wal_bytes_total");
      N.GroupSize = R.histogram("comlat_wal_group_size");
      N.SegmentsCreated = R.counter("comlat_wal_segments_created_total");
      N.SegmentsDeleted = R.counter("comlat_wal_segments_deleted_total");
      N.DurableSeq = R.gauge("comlat_wal_durable_seq");
      return N;
    }();
    return M;
  }
};

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void putU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(std::string_view Buf, size_t Pos) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
  return V;
}

uint64_t getU64(std::string_view Buf, size_t Pos) {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
  return V;
}

std::string segmentName(uint64_t FirstSeq) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "wal-%020llu.log",
                static_cast<unsigned long long>(FirstSeq));
  return Buf;
}

/// A durable log that cannot write is lying to its clients; fail stop
/// before any un-durable ACK can be released.
[[noreturn]] void walDie(const char *What, const std::string &Path) {
  std::fprintf(stderr, "comlat wal: %s %s: %s\n", What, Path.c_str(),
               std::strerror(errno));
  std::abort();
}

bool readWholeFile(const std::string &Path, std::string &Out,
                   std::string *Err) {
  const int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (Err)
      *Err = "open " + Path + ": " + std::strerror(errno);
    return false;
  }
  Out.clear();
  char Buf[64 * 1024];
  for (;;) {
    const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    ::close(Fd);
    if (N < 0) {
      if (Err)
        *Err = "read " + Path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Record framing
//===----------------------------------------------------------------------===//

void svc::encodeWalRecord(std::string &Out, uint64_t Seq,
                          const std::vector<Op> &Ops,
                          const std::vector<int64_t> &Results) {
  std::string P;
  P.reserve(16 + Ops.size() * 18 + Results.size() * 8);
  putU64(P, Seq);
  putU32(P, static_cast<uint32_t>(Ops.size()));
  for (const Op &O : Ops) {
    P.push_back(static_cast<char>(O.Obj));
    P.push_back(static_cast<char>(O.Method));
    putU64(P, static_cast<uint64_t>(O.A));
    putU64(P, static_cast<uint64_t>(O.B));
  }
  putU32(P, static_cast<uint32_t>(Results.size()));
  for (const int64_t V : Results)
    putU64(P, static_cast<uint64_t>(V));
  putU32(Out, static_cast<uint32_t>(P.size()));
  Out += P;
  putU32(Out, crc32c(P));
}

WalDecode svc::decodeWalRecord(std::string_view Buf, size_t &Pos,
                               WalRecord &Out) {
  if (Pos == Buf.size())
    return WalDecode::End;
  if (Pos + 4 > Buf.size())
    return WalDecode::Torn; // partial length prefix
  const uint32_t Len = getU32(Buf, Pos);
  if (Len < 16 || Len > MaxWalRecordPayload)
    return WalDecode::Torn;
  if (Pos + 4 + Len + 4 > Buf.size())
    return WalDecode::Torn; // record cut off mid-write
  const std::string_view Payload = Buf.substr(Pos + 4, Len);
  if (getU32(Buf, Pos + 4 + Len) != crc32c(Payload))
    return WalDecode::Torn;

  size_t P = 0;
  Out.Seq = getU64(Payload, P);
  P += 8;
  const uint32_t NumOps = getU32(Payload, P);
  P += 4;
  if (NumOps == 0 || NumOps > MaxBatchOps ||
      P + NumOps * 18ull + 4 > Payload.size())
    return WalDecode::Torn;
  Out.Ops.clear();
  Out.Ops.reserve(NumOps);
  for (uint32_t I = 0; I != NumOps; ++I) {
    Op O;
    O.Obj = static_cast<uint8_t>(Payload[P]);
    O.Method = static_cast<uint8_t>(Payload[P + 1]);
    O.A = static_cast<int64_t>(getU64(Payload, P + 2));
    O.B = static_cast<int64_t>(getU64(Payload, P + 10));
    Out.Ops.push_back(O);
    P += 18;
  }
  const uint32_t NumRes = getU32(Payload, P);
  P += 4;
  if (NumRes > MaxBatchOps || P + NumRes * 8ull != Payload.size())
    return WalDecode::Torn;
  Out.Results.clear();
  Out.Results.reserve(NumRes);
  for (uint32_t I = 0; I != NumRes; ++I) {
    Out.Results.push_back(static_cast<int64_t>(getU64(Payload, P)));
    P += 8;
  }
  Pos += 4 + Len + 4;
  return WalDecode::Ok;
}

//===----------------------------------------------------------------------===//
// Directory scan (recovery)
//===----------------------------------------------------------------------===//

bool svc::scanWalDir(const std::string &Dir, uint64_t Watermark, WalScan &Out,
                     std::string *Err, bool Repair) {
  Out = WalScan{};
  std::vector<std::string> Names;
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    if (Err)
      *Err = "opendir " + Dir + ": " + std::strerror(errno);
    return false;
  }
  while (struct dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (Name.size() > 8 && Name.compare(0, 4, "wal-") == 0 &&
        Name.compare(Name.size() - 4, 4, ".log") == 0)
      Names.push_back(Name);
  }
  ::closedir(D);
  // Zero-padded first-sequence names: lexicographic order is seq order.
  std::sort(Names.begin(), Names.end());

  uint64_t LastValid = 0;
  for (size_t F = 0; F != Names.size(); ++F) {
    const std::string Path = Dir + "/" + Names[F];
    std::string Bytes;
    if (!readWholeFile(Path, Bytes, Err))
      return false;
    Out.Segments.push_back(Names[F]);
    size_t Pos = 0;
    for (;;) {
      WalRecord R;
      const WalDecode D2 = decodeWalRecord(Bytes, Pos, R);
      if (D2 == WalDecode::End)
        break;
      // A sequence regression means the bytes are not a prefix of any real
      // history; treat it like a torn record and stop there.
      if (D2 == WalDecode::Torn || R.Seq <= LastValid) {
        Out.Torn = true;
        if (Repair) {
          // Drop the garbage so it can never shadow future appends: keep
          // the valid prefix of this file (unlink it outright when there
          // is none — a zero-length leftover would collide with the next
          // writer's exclusive create), remove every later segment.
          if (Pos == 0) {
            if (::unlink(Path.c_str()) != 0 && Err) {
              *Err = "unlink " + Path + ": " + std::strerror(errno);
              return false;
            }
          } else if (::truncate(Path.c_str(), static_cast<off_t>(Pos)) !=
                         0 &&
                     Err) {
            *Err = "truncate " + Path + ": " + std::strerror(errno);
            return false;
          }
          for (size_t G = F + 1; G != Names.size(); ++G)
            ::unlink((Dir + "/" + Names[G]).c_str());
        }
        Out.LastSeq = LastValid;
        return true;
      }
      // The log is contiguous by construction (logCommit assigns and
      // enqueues under one mutex; truncation only drops whole segments
      // below the snapshot watermark), so a skipped-ahead sequence means
      // acknowledged records are missing from disk. That is not damage a
      // truncation can repair — the records past the hole were
      // acknowledged — so report it and leave every file alone.
      const uint64_t Expect = std::max(LastValid, Watermark) + 1;
      if (R.Seq > Expect) {
        Out.Gap = true;
        Out.GapAt = Expect;
        Out.LastSeq = LastValid;
        return true;
      }
      LastValid = R.Seq;
      if (R.Seq <= Watermark) {
        ++Out.Skipped;
        continue;
      }
      Out.Records.push_back(std::move(R));
    }
    // A segment with no valid record at all (a crash between segment
    // creation and the first durable write) must not survive repair: on
    // the next restart openSegment would re-create the same name.
    if (Repair && Pos == 0)
      ::unlink(Path.c_str());
  }
  Out.LastSeq = LastValid;
  return true;
}

//===----------------------------------------------------------------------===//
// The live log
//===----------------------------------------------------------------------===//

Wal::Wal(const WalConfig &Config, uint64_t FirstSeq)
    : Config(Config), NextSeq(FirstSeq) {
  // Everything below FirstSeq is durable history from before this
  // instance; seed both watermarks there so a rotation boundary at the
  // recovered watermark completes without waiting for a new write.
  LastWritten = FirstSeq - 1;
  Durable.store(FirstSeq - 1, std::memory_order_release);
  WalMetrics::get(); // register the families up front
  Writer = std::thread([this] { writerMain(); });
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  if (Writer.joinable())
    Writer.join();
}

uint64_t Wal::logCommit(EncodeFn Encode) {
  uint64_t Seq;
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Seq = NextSeq++;
    Queue.push_back({Seq, nowUs(), std::move(Encode)});
  }
  WorkCv.notify_all();
  return Seq;
}

void Wal::awaitDurable(uint64_t Seq, AckFn Ack) {
  {
    std::unique_lock<std::mutex> Guard(Mu);
    if (Seq > Durable.load(std::memory_order_acquire)) {
      Acks[Seq].push_back(std::move(Ack));
      return;
    }
  }
  Ack(); // already durable: release on the calling thread
}

void Wal::waitDurable(uint64_t Seq) {
  std::unique_lock<std::mutex> Guard(Mu);
  DurableCv.wait(Guard, [&] {
    return Durable.load(std::memory_order_acquire) >= Seq;
  });
}

void Wal::flush() {
  uint64_t Last;
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Last = NextSeq - 1;
  }
  waitDurable(Last);
}

uint64_t Wal::lastAssignedSeq() const {
  std::lock_guard<std::mutex> Guard(Mu);
  return NextSeq - 1;
}

void Wal::rotateAfter(uint64_t Boundary) {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    RotatePending = true;
    RotateBoundary = Boundary;
  }
  WorkCv.notify_all();
}

uint64_t Wal::subscribeTail(uint64_t Id, TailFn Sink) {
  std::lock_guard<std::mutex> Guard(Mu);
  Tails[Id] = std::move(Sink);
  return Durable.load(std::memory_order_acquire);
}

void Wal::unsubscribeTail(uint64_t Id) {
  std::lock_guard<std::mutex> Guard(Mu);
  Tails.erase(Id);
}

size_t Wal::truncateThrough(uint64_t Boundary) {
  waitDurable(Boundary);
  std::vector<std::pair<std::string, uint64_t>> Victims;
  {
    std::lock_guard<std::mutex> Guard(Mu);
    // Only segments entirely at or below the boundary go; the rest stay
    // closed and eligible for a later, higher boundary. The server
    // truncates through the *oldest retained* snapshot's watermark, so
    // the records that the fallback snapshot would need remain.
    auto Keep = std::stable_partition(
        Closed.begin(), Closed.end(),
        [&](const std::pair<std::string, uint64_t> &C) {
          return C.second <= Boundary;
        });
    Victims.assign(std::make_move_iterator(Closed.begin()),
                   std::make_move_iterator(Keep));
    Closed.erase(Closed.begin(), Keep);
  }
  for (const auto &[Name, Last] : Victims)
    ::unlink((Config.Dir + "/" + Name).c_str());
  if (!Victims.empty()) {
    syncDir();
    WalMetrics::get().SegmentsDeleted->add(Victims.size());
  }
  return Victims.size();
}

void Wal::openSegment(uint64_t FirstSeq) {
  CurrentName = segmentName(FirstSeq);
  const std::string Path = Config.Dir + "/" + CurrentName;
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (Fd < 0 && errno == EEXIST) {
    // A crash between a previous incarnation's segment creation and its
    // first durable record leaves an empty file under this exact name
    // (recovery unlinks those, but this instance may be running without
    // a repair scan). Adopting an *empty* leftover is safe — there are
    // no bytes to shadow; anything non-empty means two writers, so die.
    Fd = ::open(Path.c_str(), O_WRONLY | O_CLOEXEC);
    if (Fd >= 0) {
      struct stat St;
      if (::fstat(Fd, &St) != 0 || St.st_size != 0) {
        ::close(Fd);
        Fd = -1;
        errno = EEXIST;
      }
    }
  }
  if (Fd < 0)
    walDie("create segment", Path);
  SegFirst = FirstSeq;
  syncDir(); // the segment's directory entry must survive a crash too
  WalMetrics::get().SegmentsCreated->add();
}

void Wal::closeSegment() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  std::lock_guard<std::mutex> Guard(Mu);
  // LastWritten is exact here: close always follows the segment's final
  // record (or the rotation that ended it), so it is the segment's last
  // sequence — the truncation boundary test needs exactly that.
  Closed.emplace_back(CurrentName, LastWritten);
}

void Wal::syncDir() {
  const int DirFd = ::open(Config.Dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (DirFd < 0)
    walDie("open directory", Config.Dir);
  if (::fdatasync(DirFd) != 0)
    walDie("fsync directory", Config.Dir);
  ::close(DirFd);
}

void Wal::writerMain() {
  obs::shardIndex(); // claim a metric shard for this thread
  WalMetrics &M = WalMetrics::get();
  std::vector<Item> Group;
  std::string Buf;  // bytes pending for the current segment fd
  std::string Rec;  // one record's framed bytes (scratch)
  std::string Ship; // the whole group's framed bytes, for tail sinks
  for (;;) {
    Group.clear();
    bool Rotate = false;
    uint64_t Boundary = 0;
    {
      std::unique_lock<std::mutex> Guard(Mu);
      WorkCv.wait(Guard, [&] {
        return Stop || !Queue.empty() || RotatePending;
      });
      if (Queue.empty() && Stop && !RotatePending)
        break;
      if (!Queue.empty()) {
        // Group commit: the oldest record waits at most SyncIntervalUs for
        // companions (no wait at all during shutdown), and a group never
        // exceeds GroupMax records per fdatasync.
        const auto Deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(
                Queue.front().ArrivalUs + Config.SyncIntervalUs > nowUs()
                    ? Queue.front().ArrivalUs + Config.SyncIntervalUs -
                          nowUs()
                    : 0);
        while (Queue.size() < Config.GroupMax && !Stop &&
               WorkCv.wait_until(Guard, Deadline) !=
                   std::cv_status::timeout) {
        }
        const size_t N = std::min<size_t>(Queue.size(), Config.GroupMax);
        for (size_t I = 0; I != N; ++I) {
          Group.push_back(std::move(Queue.front()));
          Queue.pop_front();
        }
      }
      Rotate = RotatePending;
      Boundary = RotateBoundary;
      if (Group.empty() && Queue.empty() && Stop && !Rotate)
        break;
    }

    Buf.clear();
    Ship.clear();
    bool Synced = false;
    for (Item &It : Group) {
      // Rotation boundary inside this group: finish the old segment (sync
      // what is buffered for it first) before the boundary-crossing
      // record opens the next one.
      if (Rotate && Fd >= 0 && SegFirst <= Boundary && It.Seq > Boundary) {
        if (!Buf.empty()) {
          if (::write(Fd, Buf.data(), Buf.size()) !=
              static_cast<ssize_t>(Buf.size()))
            walDie("write segment", CurrentName);
          M.Bytes->add(Buf.size());
          Buf.clear();
        }
        if (::fdatasync(Fd) != 0)
          walDie("fsync segment", CurrentName);
        M.Fsyncs->add();
        closeSegment();
      }
      if (Fd < 0)
        openSegment(It.Seq);
      // Encode into a scratch string so the record's exact on-disk bytes
      // can also feed the tail sinks: Buf alone would not do, a mid-group
      // rotation flushes and clears it.
      Rec.clear();
      It.Encode(It.Seq, Rec);
      Buf += Rec;
      Ship += Rec;
      LastWritten = It.Seq;
    }
    if (!Buf.empty()) {
      if (::write(Fd, Buf.data(), Buf.size()) !=
          static_cast<ssize_t>(Buf.size()))
        walDie("write segment", CurrentName);
      M.Bytes->add(Buf.size());
    }
    if (!Group.empty()) {
      if (::fdatasync(Fd) != 0)
        walDie("fsync segment", CurrentName);
      Synced = true;
      M.Appends->add(Group.size());
      M.Fsyncs->add();
      M.GroupSize->observe(Group.size());
    }

    // A rotation whose boundary is fully written can finish now even with
    // no boundary-crossing record in sight (the snapshot path waits on
    // truncateThrough, which only removes *closed* segments).
    if (Rotate && Fd >= 0 && SegFirst <= Boundary &&
        LastWritten >= Boundary) {
      if (!Synced) {
        if (::fdatasync(Fd) != 0)
          walDie("fsync segment", CurrentName);
        M.Fsyncs->add();
      }
      closeSegment();
    }

    std::vector<AckFn> Release;
    std::vector<TailFn> Sinks;
    {
      std::lock_guard<std::mutex> Guard(Mu);
      // Rotation is done once the boundary record is written: the close
      // above already ended the covering segment in that case, and a
      // boundary at or below the recovered watermark (LastWritten starts
      // at FirstSeq-1) is satisfied without any new write.
      if (RotatePending && LastWritten >= RotateBoundary)
        RotatePending = false;
      if (!Group.empty()) {
        Durable.store(LastWritten, std::memory_order_release);
        auto End = Acks.upper_bound(LastWritten);
        for (auto It = Acks.begin(); It != End; ++It)
          for (AckFn &A : It->second)
            Release.push_back(std::move(A));
        Acks.erase(Acks.begin(), End);
        // Snapshot the sinks inside the critical section that published
        // durability: a sink registered later saw this group reflected in
        // its registration watermark, a sink snapshotted here did not —
        // either way each record reaches each sink exactly once.
        Sinks.reserve(Tails.size());
        for (const auto &[Id, Sink] : Tails)
          Sinks.push_back(Sink);
      }
    }
    if (!Group.empty()) {
      M.DurableSeq->set(static_cast<int64_t>(LastWritten));
      DurableCv.notify_all();
      for (AckFn &A : Release)
        A();
      for (const TailFn &S : Sinks)
        S(Group.front().Seq, LastWritten, Ship);
    }
  }
  // Shutdown: everything queued has been written and synced; finish the
  // open segment cleanly.
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
