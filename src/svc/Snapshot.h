//===- svc/Snapshot.h - Atomic ADT state snapshots --------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot files for the durable serving layer (DESIGN.md §3.10). A
/// snapshot captures the host ADT state text plus the last-applied commit
/// sequence (the watermark): recovery loads the newest valid snapshot and
/// replays only WAL records above the watermark. Files are written to a
/// temp name, fdatasync'ed, atomically renamed to `snap-<seq>.snap`, and
/// the directory is fsync'ed — a crash in any window leaves either the old
/// snapshot set or the new one, never a half-written file with a valid
/// name. The loader checks a CRC over the whole payload and falls back to
/// the next-newest file when the newest is damaged, so even a lost rename
/// race cannot strand recovery.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_SNAPSHOT_H
#define COMLAT_SVC_SNAPSHOT_H

#include <cstdint>
#include <string>

namespace comlat {
namespace svc {

/// One snapshot: the commit-sequence watermark and the serialized ADT
/// state (ObjectHost::snapshotText()).
struct SnapshotData {
  uint64_t Seq = 0;
  std::string State;
};

/// Writes \p Snap under \p Dir as `snap-<seq>.snap` via temp file +
/// fdatasync + atomic rename + directory fsync. Returns false and sets
/// \p Err on I/O failure (a failed write never disturbs existing
/// snapshots).
bool writeSnapshot(const std::string &Dir, const SnapshotData &Snap,
                   std::string *Err = nullptr);

/// Loads the newest valid snapshot under \p Dir into \p Out. Damaged or
/// torn files (bad magic, short header, CRC mismatch) are skipped in
/// favor of older ones; `*.tmp` leftovers from a crashed writer are
/// ignored entirely. Returns false when no valid snapshot exists (a fresh
/// directory — not an error).
bool loadNewestSnapshot(const std::string &Dir, SnapshotData &Out,
                        std::string *Err = nullptr);

/// Unlinks all but the newest \p Keep snapshot files under \p Dir (plus
/// any stale `*.tmp` leftovers). Returns the number of files removed.
size_t pruneSnapshots(const std::string &Dir, size_t Keep = 2);

/// Watermark of the oldest snapshot file still under \p Dir (by name —
/// the file is not validated), or 0 when none exist. WAL truncation must
/// not pass this: every record above the oldest retained snapshot has to
/// stay on disk for that snapshot to be a usable recovery fallback.
uint64_t oldestSnapshotSeq(const std::string &Dir);

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_SNAPSHOT_H
