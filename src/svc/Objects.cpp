//===- svc/Objects.cpp - Hosted boosted structures -------------------------===//

#include "svc/Objects.h"

#include "adt/SetSpecs.h"

#include <cassert>

using namespace comlat;
using namespace comlat::svc;

ObjectHost::ObjectHost(size_t UfElements, bool PrivatizeAcc)
    : UfElems(UfElements), PrivAcc(PrivatizeAcc),
      Set(makeGatedSet(preciseSetSpec())),
      Acc(PrivatizeAcc ? makePrivatizedAccumulator()
                       : makeLockedAccumulator()),
      Uf(makeGatedUnionFind(UfElements)) {}

bool ObjectHost::applyOp(Transaction &Tx, const Op &O, int64_t &Result) {
  assert(validOp(O, UfElems) && "ops are validated at the protocol layer");
  bool Flag = false;
  switch (static_cast<ObjectId>(O.Obj)) {
  case ObjectId::Set: {
    bool Ok = false;
    switch (O.Method) {
    case SetAdd:
      Ok = Set->add(Tx, O.A, Flag);
      break;
    case SetRemove:
      Ok = Set->remove(Tx, O.A, Flag);
      break;
    default:
      Ok = Set->contains(Tx, O.A, Flag);
      break;
    }
    Result = Flag ? 1 : 0;
    return Ok;
  }
  case ObjectId::Acc: {
    if (O.Method == AccIncrement) {
      Result = O.A;
      return Acc->increment(Tx, O.A);
    }
    int64_t Sum = 0;
    const bool Ok = Acc->read(Tx, Sum);
    Result = Sum;
    return Ok;
  }
  case ObjectId::Uf: {
    if (O.Method == UfFind) {
      int64_t Rep = UfNone;
      const bool Ok = Uf->find(Tx, O.A, Rep);
      Result = Rep;
      return Ok;
    }
    const bool Ok = Uf->unite(Tx, O.A, O.B, Flag);
    Result = Flag ? 1 : 0;
    return Ok;
  }
  }
  return false;
}

std::string ObjectHost::stateText() const {
  std::string Out;
  Out += "set=" + Set->signature() + "\n";
  Out += "acc=" + std::to_string(Acc->value()) + "\n";
  Out += "uf=" + Uf->signature() + "\n";
  return Out;
}

int64_t OracleReplica::applyOp(const Op &O) {
  switch (static_cast<ObjectId>(O.Obj)) {
  case ObjectId::Set:
    switch (O.Method) {
    case SetAdd:
      return Set.insert(O.A) ? 1 : 0;
    case SetRemove:
      return Set.erase(O.A) ? 1 : 0;
    default:
      return Set.contains(O.A) ? 1 : 0;
    }
  case ObjectId::Acc:
    if (O.Method == AccIncrement) {
      Sum += O.A;
      return O.A;
    }
    return Sum;
  case ObjectId::Uf: {
    if (O.Method == UfFind) {
      int64_t Rep = UfNone;
      Uf.find(O.A, /*Probe=*/nullptr, /*Actions=*/nullptr, Rep);
      return Rep;
    }
    bool Changed = false;
    Uf.unite(O.A, O.B, /*Probe=*/nullptr, /*Actions=*/nullptr, Changed);
    return Changed ? 1 : 0;
  }
  }
  return 0;
}

std::string OracleReplica::stateText() const {
  std::string Out;
  Out += "set=" + Set.signature() + "\n";
  Out += "acc=" + std::to_string(Sum) + "\n";
  Out += "uf=" + Uf.signature() + "\n";
  return Out;
}
