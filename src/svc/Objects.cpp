//===- svc/Objects.cpp - Hosted boosted structures -------------------------===//

#include "svc/Objects.h"

#include "adt/SetSpecs.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

using namespace comlat;
using namespace comlat::svc;

ObjectHost::ObjectHost(size_t UfElements, bool PrivatizeAcc)
    : UfElems(UfElements), PrivAcc(PrivatizeAcc),
      Set(makeGatedSet(preciseSetSpec())),
      Acc(PrivatizeAcc ? makePrivatizedAccumulator()
                       : makeLockedAccumulator()),
      Uf(makeGatedUnionFind(UfElements)) {}

bool ObjectHost::applyOp(Transaction &Tx, const Op &O, int64_t &Result) {
  assert(validOp(O, UfElems) && "ops are validated at the protocol layer");
  bool Flag = false;
  switch (static_cast<ObjectId>(O.Obj)) {
  case ObjectId::Set: {
    bool Ok = false;
    switch (O.Method) {
    case SetAdd:
      Ok = Set->add(Tx, O.A, Flag);
      break;
    case SetRemove:
      Ok = Set->remove(Tx, O.A, Flag);
      break;
    default:
      Ok = Set->contains(Tx, O.A, Flag);
      break;
    }
    Result = Flag ? 1 : 0;
    return Ok;
  }
  case ObjectId::Acc: {
    if (O.Method == AccIncrement) {
      Result = O.A;
      return Acc->increment(Tx, O.A);
    }
    int64_t Sum = 0;
    const bool Ok = Acc->read(Tx, Sum);
    Result = Sum;
    return Ok;
  }
  case ObjectId::Uf: {
    if (O.Method == UfFind) {
      int64_t Rep = UfNone;
      const bool Ok = Uf->find(Tx, O.A, Rep);
      Result = Rep;
      return Ok;
    }
    const bool Ok = Uf->unite(Tx, O.A, O.B, Flag);
    Result = Flag ? 1 : 0;
    return Ok;
  }
  }
  return false;
}

std::string svc::renderStateText(const std::string &SetSig, int64_t AccValue,
                                 const std::string &UfSig) {
  std::string Out;
  Out += "set=" + SetSig + "\n";
  Out += "acc=" + std::to_string(AccValue) + "\n";
  Out += "uf=" + UfSig + "\n";
  return Out;
}

std::string svc::renderSnapshotText(size_t UfElems, const std::string &SetSig,
                                    int64_t AccValue,
                                    const std::string &UfState) {
  std::string Out;
  Out += "ufelems=" + std::to_string(UfElems) + "\n";
  Out += "set=" + SetSig + "\n";
  Out += "acc=" + std::to_string(AccValue) + "\n";
  Out += "ufstate=" + UfState + "\n";
  return Out;
}

std::string ObjectHost::stateText() const {
  return renderStateText(Set->signature(), Acc->value(), Uf->signature());
}

namespace {

/// Value of the `<Key>=` line in \p Text, or false when absent.
bool snapshotField(const std::string &Text, const char *Key,
                   std::string &Out) {
  const std::string Needle = std::string(Key) + "=";
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    if (Text.compare(Pos, Needle.size(), Needle) == 0) {
      Out = Text.substr(Pos + Needle.size(), Eol - Pos - Needle.size());
      return true;
    }
    Pos = Eol + 1;
  }
  return false;
}

/// Parses a trailing-comma int64 list ("3,17," or empty).
bool parseIntList(const std::string &Csv, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (Pos < Csv.size()) {
    const size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      return false;
    try {
      Out.push_back(std::stoll(Csv.substr(Pos, Comma - Pos)));
    } catch (...) {
      return false;
    }
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

bool svc::parseSnapshotText(const std::string &Text, SnapshotFields &Out,
                            std::string *Err) {
  const auto Fail = [&](const char *What) {
    if (Err)
      *Err = What;
    return false;
  };
  std::string Elems, SetCsv, AccVal;
  if (!snapshotField(Text, "ufelems", Elems) ||
      !snapshotField(Text, "set", SetCsv) ||
      !snapshotField(Text, "acc", AccVal) ||
      !snapshotField(Text, "ufstate", Out.UfState))
    return Fail("snapshot missing a field");
  try {
    Out.UfElems = std::stoull(Elems);
  } catch (...) {
    return Fail("snapshot ufelems malformed");
  }
  Out.SetKeys.clear();
  if (!parseIntList(SetCsv, Out.SetKeys))
    return Fail("snapshot set list malformed");
  try {
    Out.AccValue = std::stoll(AccVal);
  } catch (...) {
    return Fail("snapshot acc malformed");
  }
  return true;
}

std::string ObjectHost::snapshotText() const {
  return renderSnapshotText(UfElems, Set->signature(), Acc->value(),
                            Uf->dumpState());
}

bool ObjectHost::loadSnapshot(const std::string &Text, std::string *Err) {
  const auto Fail = [&](const char *What) {
    if (Err)
      *Err = What;
    return false;
  };
  SnapshotFields F;
  if (!parseSnapshotText(Text, F, Err))
    return false;
  if (F.UfElems != UfElems)
    return Fail("snapshot ufelems mismatch");

  // Membership and the sum replay through the gated path in chunked
  // transactions (the host is quiesced, so nothing can veto); the forest
  // installs its exact concrete state directly.
  constexpr size_t ChunkOps = 1024;
  for (size_t Base = 0; Base < F.SetKeys.size(); Base += ChunkOps) {
    Transaction Tx(allocTxId());
    const size_t End = std::min(F.SetKeys.size(), Base + ChunkOps);
    for (size_t I = Base; I != End; ++I) {
      bool Added = false;
      if (!Set->add(Tx, F.SetKeys[I], Added)) {
        Tx.abort();
        return Fail("snapshot set replay vetoed");
      }
    }
    Tx.commit();
  }
  if (F.AccValue != 0) {
    Transaction Tx(allocTxId());
    if (!Acc->increment(Tx, F.AccValue)) {
      Tx.abort();
      return Fail("snapshot acc replay vetoed");
    }
    Tx.commit();
  }
  if (!Uf->restoreState(F.UfState))
    return Fail("snapshot ufstate malformed");
  if (Uf->numElements() != UfElems)
    return Fail("snapshot ufstate element-count mismatch");
  return true;
}

int64_t OracleReplica::applyOp(const Op &O) {
  switch (static_cast<ObjectId>(O.Obj)) {
  case ObjectId::Set:
    switch (O.Method) {
    case SetAdd:
      return Set.insert(O.A) ? 1 : 0;
    case SetRemove:
      return Set.erase(O.A) ? 1 : 0;
    default:
      return Set.contains(O.A) ? 1 : 0;
    }
  case ObjectId::Acc:
    if (O.Method == AccIncrement) {
      Sum += O.A;
      return O.A;
    }
    return Sum;
  case ObjectId::Uf: {
    if (O.Method == UfFind) {
      int64_t Rep = UfNone;
      Uf.find(O.A, /*Probe=*/nullptr, /*Actions=*/nullptr, Rep);
      return Rep;
    }
    bool Changed = false;
    Uf.unite(O.A, O.B, /*Probe=*/nullptr, /*Actions=*/nullptr, Changed);
    return Changed ? 1 : 0;
  }
  }
  return 0;
}

bool OracleReplica::loadSnapshot(const std::string &Text) {
  SnapshotFields F;
  if (!parseSnapshotText(Text, F))
    return false;
  if (F.UfElems != UfElems)
    return false;
  Sum = F.AccValue;
  Set.clear();
  for (const int64_t K : F.SetKeys)
    Set.insert(K);
  return Uf.restoreState(F.UfState) && Uf.numElements() == UfElems;
}

std::string OracleReplica::stateText() const {
  return renderStateText(Set.signature(), Sum, Uf.signature());
}
