//===- svc/comlat_shard.cpp - The comlat sharding proxy --------------------===//
//
// Fronts N comlat-serve backends with the spec-driven routing plan of
// svc/Shard.h: key-separable batches forward whole (fast path), cross-shard
// batches split into independent per-shard transactions, whole-structure
// reads scatter-gather and reconcile by lattice merge. See DESIGN.md §3.12.
//
//   comlat-shard --port=7400 --backends=127.0.0.1:7411,127.0.0.1:7412
//   comlat-shard --port=0 --port-file=/tmp/port --backends=...   # CI style
//
// Backends should run with --shard-id=K matching their position in
// --backends (the proxy cross-checks every sub-batch reply). SIGTERM and
// SIGINT drain gracefully: stop accepting, let in-flight batches finish
// against their backends, flush every reply, exit 0.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "support/PortFile.h"
#include "svc/Proxy.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

using namespace comlat;

namespace {

/// Parses `host:port,host:port,...` into endpoints; false on any bad entry.
bool parseBackends(const std::string &Spec,
                   std::vector<svc::ShardEndpoint> &Out) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    const std::string Entry = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Entry.empty())
      continue;
    const size_t Colon = Entry.rfind(':');
    if (Colon == std::string::npos || Colon == 0)
      return false;
    const unsigned long Port =
        std::strtoul(Entry.c_str() + Colon + 1, nullptr, 10);
    if (Port == 0 || Port > 65535)
      return false;
    Out.push_back({Entry.substr(0, Colon), static_cast<uint16_t>(Port)});
  }
  return !Out.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  Opts.checkKnown({"port", "bind", "port-file", "io-threads", "backends",
                   "vnodes", "ring-seed", "uf-elements", "busy-retries",
                   "busy-retry-delay-ms", "redirect-limit",
                   "reconnect-delay-ms", "reconnect-max-delay-ms",
                   "max-write-buffer"});

  svc::ProxyConfig Config;
  Config.BindAddress = Opts.getString("bind", "127.0.0.1");
  Config.Port = static_cast<uint16_t>(Opts.getUInt("port", 7400));
  Config.IoThreads = static_cast<unsigned>(Opts.getUInt("io-threads", 2));
  Config.VNodes = static_cast<unsigned>(Opts.getUInt("vnodes", 64));
  Config.RingSeed = Opts.getUInt("ring-seed", 0x5EEDull);
  Config.UfElements = Opts.getUInt("uf-elements", 1024);
  Config.BusyRetryLimit =
      static_cast<unsigned>(Opts.getUInt("busy-retries", 64));
  Config.BusyRetryDelayMs =
      static_cast<unsigned>(Opts.getUInt("busy-retry-delay-ms", 2));
  Config.RedirectLimit =
      static_cast<unsigned>(Opts.getUInt("redirect-limit", 4));
  Config.ReconnectDelayMs =
      static_cast<unsigned>(Opts.getUInt("reconnect-delay-ms", 50));
  Config.ReconnectMaxDelayMs =
      static_cast<unsigned>(Opts.getUInt("reconnect-max-delay-ms", 2000));
  Config.MaxWriteBuffered = Opts.getUInt("max-write-buffer", 1u << 22);

  const std::string Backends = Opts.getString("backends", "");
  if (Backends.empty() || !parseBackends(Backends, Config.Backends)) {
    std::fprintf(stderr,
                 "comlat-shard: --backends wants host:port[,host:port...], "
                 "got '%s'\n",
                 Backends.c_str());
    return 1;
  }
  if (Config.Backends.size() > svc::MaxShards) {
    std::fprintf(stderr, "comlat-shard: at most %u backends\n",
                 svc::MaxShards);
    return 1;
  }
  if (Config.VNodes == 0) {
    std::fprintf(stderr, "comlat-shard: --vnodes must be > 0\n");
    return 1;
  }

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigtimedwait() below is the only receiver.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGTERM);
  sigaddset(&Sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  svc::Proxy P(Config);
  std::string Err;
  if (!P.start(&Err)) {
    std::fprintf(stderr, "comlat-shard: %s\n", Err.c_str());
    return 1;
  }
  std::printf("comlat-shard listening on %s:%u over %zu shards "
              "(vnodes=%u seed=%llu)\n",
              Config.BindAddress.c_str(), unsigned(P.port()),
              Config.Backends.size(), Config.VNodes,
              static_cast<unsigned long long>(Config.RingSeed));
  std::fflush(stdout);

  // Published atomically (temp + rename): CI polls this file and must
  // never read a half-written port.
  const std::string PortFile = Opts.getString("port-file", "");
  if (!PortFile.empty() && !writePortFile(PortFile, P.port())) {
    std::fprintf(stderr, "comlat-shard: cannot write %s\n", PortFile.c_str());
    P.stop();
    return 1;
  }

  const struct timespec Tick = {0, 200 * 1000 * 1000};
  for (;;) {
    const int Sig = sigtimedwait(&Sigs, nullptr, &Tick);
    if (Sig < 0) { // timeout (or EINTR)
      if (P.stopRequested())
        break;
      continue;
    }
    std::fprintf(stderr, "comlat-shard: caught %s, draining\n",
                 Sig == SIGTERM ? "SIGTERM" : "SIGINT");
    break;
  }
  P.stop();
  std::fprintf(stderr, "comlat-shard: drained, bye\n");
  return 0;
}
