//===- svc/comlat_loadgen.cpp - Load generator for comlat-serve ------------===//
//
// Drives a running comlat-serve with batch transactions and reports
// latency/throughput. Closed loop by default; --qps=N switches to an open
// loop paced at N batches/second aggregate.
//
//   comlat-loadgen --port=7411 --threads=4 --batches=10000 --verify
//   comlat-loadgen --port=7411 --duration=5 --qps=2000 --json=out.json
//   comlat-loadgen --port=7411 --wait-ready=30 --batches=0   # readiness gate
//   comlat-loadgen --port=7411 --check-recovery=acked.txt --wal-dir=wal/
//   comlat-loadgen --port=7411 --read-from=127.0.0.1:7412   # follower reads
//   comlat-loadgen --port=7411 --check-follower=127.0.0.1:7412
//   comlat-loadgen --port=7480 --qps=60000 --shard-affinity # vs a proxy
//
// Exits non-zero on any protocol error (2), a verification failure (3),
// when not a single batch committed (4), a recovery-audit failure (5), a
// readiness timeout (6) or a follower-audit failure (7) — the CI smoke,
// crash and replication jobs lean on these.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "svc/LoadGen.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace comlat;

namespace {

/// Parses "host:port"; false (and a complaint) on anything else.
bool parseEndpoint(const std::string &Spec, const char *Flag,
                   std::string &Host, uint16_t &Port) {
  const size_t Colon = Spec.rfind(':');
  unsigned long P = 0;
  if (Colon != std::string::npos)
    P = std::strtoul(Spec.c_str() + Colon + 1, nullptr, 10);
  if (Colon == std::string::npos || Colon == 0 || P == 0 || P > 65535) {
    std::fprintf(stderr, "comlat-loadgen: %s wants host:port, got '%s'\n",
                 Flag, Spec.c_str());
    return false;
  }
  Host = Spec.substr(0, Colon);
  Port = static_cast<uint16_t>(P);
  return true;
}

/// Fetches the server's metrics dump into \p Path. Also the only way to
/// scrape a follower: a load run against one would just collect
/// Redirects, so CI pairs this with --wait-ready --batches=0.
bool dumpMetrics(const std::string &Host, uint16_t Port,
                 const std::string &Path) {
  const std::string Text = svc::fetchMetricsText(Host, Port);
  if (Text.empty()) {
    std::fprintf(stderr, "comlat-loadgen: metrics fetch failed\n");
    return false;
  }
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fputs(Text.c_str(), F);
    std::fclose(F);
    return true;
  }
  std::fprintf(stderr, "comlat-loadgen: cannot write %s\n", Path.c_str());
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  Opts.checkKnown({"host", "port", "threads", "batches", "duration",
                   "ops-per-batch", "qps", "seed", "keyspace", "uf-elements",
                   "set-weight", "acc-weight", "uf-weight", "verify",
                   "shard-affinity", "privatized", "csv", "json",
                   "metrics-out", "wait-ready",
                   "acked-log", "tolerate-disconnect", "check-recovery",
                   "wal-dir", "read-from", "read-fraction", "check-follower",
                   "leader-wal-dir", "catchup-timeout", "direct", "window"});

  svc::LoadGenConfig Config;
  Config.Host = Opts.getString("host", "127.0.0.1");
  Config.Port = static_cast<uint16_t>(Opts.getUInt("port", 7411));
  Config.Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  Config.BatchesPerThread = Opts.getUInt("batches", 1000);
  Config.DurationSec = Opts.getDouble("duration", 0);
  Config.OpsPerBatch = static_cast<unsigned>(Opts.getUInt("ops-per-batch", 8));
  Config.TargetQps = Opts.getDouble("qps", 0);
  Config.Seed = Opts.getUInt("seed", 42);
  Config.KeySpace = Opts.getInt("keyspace", 1024);
  Config.UfElements = Opts.getUInt("uf-elements", 1024);
  Config.SetWeight = static_cast<unsigned>(Opts.getUInt("set-weight", 6));
  Config.AccWeight = static_cast<unsigned>(Opts.getUInt("acc-weight", 2));
  Config.UfWeight = static_cast<unsigned>(Opts.getUInt("uf-weight", 2));
  Config.Verify = Opts.getBool("verify");
  Config.ShardAffinity = Opts.getBool("shard-affinity");
  Config.Privatized = Opts.getBool("privatized");
  Config.TolerateDisconnect = Opts.getBool("tolerate-disconnect");
  Config.Direct = Opts.getBool("direct");
  Config.DirectWindow = static_cast<unsigned>(Opts.getUInt("window", 16));
  Config.AckedLogPath = Opts.getString("acked-log", "");
  const std::string ReadFrom = Opts.getString("read-from", "");
  if (!ReadFrom.empty() &&
      !parseEndpoint(ReadFrom, "--read-from", Config.ReadHost,
                     Config.ReadPort))
    return 1;
  Config.ReadFraction = Opts.getDouble("read-fraction", 0.25);

  // Readiness gate: poll connect + Ping before doing anything else. With
  // --batches=0 this is the whole job (CI replaces its sleeps with it).
  const double WaitReadySec = Opts.getDouble("wait-ready", 0);
  if (WaitReadySec > 0) {
    if (!svc::waitReady(Config.Host, Config.Port, WaitReadySec)) {
      std::fprintf(stderr,
                   "comlat-loadgen: server not ready after %.1fs\n",
                   WaitReadySec);
      return 6;
    }
    if (Config.BatchesPerThread == 0 && Config.DurationSec <= 0) {
      const std::string MetricsPath = Opts.getString("metrics-out", "");
      if (!MetricsPath.empty() &&
          !dumpMetrics(Config.Host, Config.Port, MetricsPath))
        return 1;
      return 0;
    }
  }

  // Recovery audit mode: no load, just check the restarted server against
  // the acked-batch ground truth and the on-disk WAL/snapshot artifacts.
  const std::string CheckRecovery = Opts.getString("check-recovery", "");
  if (!CheckRecovery.empty()) {
    svc::RecoveryCheckConfig RC;
    RC.Host = Config.Host;
    RC.Port = Config.Port;
    RC.WalDir = Opts.getString("wal-dir", "");
    RC.AckedLogPath = CheckRecovery;
    RC.UfElements = Config.UfElements;
    if (RC.WalDir.empty()) {
      std::fprintf(stderr, "comlat-loadgen: --check-recovery needs --wal-dir\n");
      return 5;
    }
    const svc::RecoveryCheckResult R = svc::runRecoveryCheck(RC);
    std::printf("recovery check: %s (%llu acked batches, %llu wal records, "
                "snapshot seq %llu, recovered seq %llu)\n",
                R.Ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(R.AckedBatches),
                static_cast<unsigned long long>(R.WalRecords),
                static_cast<unsigned long long>(R.SnapshotSeq),
                static_cast<unsigned long long>(R.RecoveredSeq));
    if (!R.Ok) {
      std::fprintf(stderr, "comlat-loadgen: recovery audit FAILED: %s\n",
                   R.Detail.c_str());
      return 5;
    }
    return 0;
  }

  // Follower audit mode: no load, just hold a leader + follower pair to
  // the replication contract (catch-up, monotonic reads, Redirect, state
  // equality, optional independent WAL-replay witness).
  const std::string CheckFollower = Opts.getString("check-follower", "");
  if (!CheckFollower.empty()) {
    svc::FollowerCheckConfig FC;
    FC.LeaderHost = Config.Host;
    FC.LeaderPort = Config.Port;
    if (!parseEndpoint(CheckFollower, "--check-follower", FC.FollowerHost,
                       FC.FollowerPort))
      return 7;
    FC.LeaderWalDir = Opts.getString("leader-wal-dir", "");
    FC.UfElements = Config.UfElements;
    FC.CatchUpTimeoutSec = Opts.getDouble("catchup-timeout", 30);
    const svc::FollowerCheckResult R = svc::runFollowerCheck(FC);
    std::printf("follower check: %s (leader durable seq %llu, follower "
                "applied seq %llu)\n",
                R.Ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(R.LeaderDurableSeq),
                static_cast<unsigned long long>(R.FollowerAppliedSeq));
    if (!R.Ok) {
      std::fprintf(stderr, "comlat-loadgen: follower audit FAILED: %s\n",
                   R.Detail.c_str());
      return 7;
    }
    return 0;
  }

  const svc::LoadGenStats Stats = svc::runLoadGen(Config);

  if (Opts.getBool("csv"))
    std::fputs(Stats.toCsv().c_str(), stdout);
  else
    std::fputs(Stats.toText().c_str(), stdout);

  const std::string JsonPath = Opts.getString("json", "");
  if (!JsonPath.empty()) {
    if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
      std::fputs(Stats.toJson().c_str(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "comlat-loadgen: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
  }

  const std::string MetricsPath = Opts.getString("metrics-out", "");
  if (!MetricsPath.empty() && !dumpMetrics(Config.Host, Config.Port, MetricsPath))
    return 1;

  if (Stats.ProtocolErrors > 0) {
    std::fprintf(stderr, "comlat-loadgen: %llu protocol errors\n",
                 static_cast<unsigned long long>(Stats.ProtocolErrors));
    return 2;
  }
  if (Stats.VerifyRan && !Stats.VerifyOk) {
    std::fprintf(stderr, "comlat-loadgen: verification FAILED: %s\n",
                 Stats.VerifyDetail.c_str());
    return 3;
  }
  if (Stats.MonotonicViolations > 0) {
    std::fprintf(stderr,
                 "comlat-loadgen: %llu monotonic-read violations\n",
                 static_cast<unsigned long long>(Stats.MonotonicViolations));
    return 7;
  }
  if (Stats.OkReplies == 0 && Stats.Disconnects == 0) {
    // A tolerated crash may legitimately beat the first commit; anything
    // else with zero commits is a dead run.
    std::fprintf(stderr, "comlat-loadgen: no batch ever committed\n");
    return 4;
  }
  return 0;
}
