//===- svc/comlat_loadgen.cpp - Load generator for comlat-serve ------------===//
//
// Drives a running comlat-serve with batch transactions and reports
// latency/throughput. Closed loop by default; --qps=N switches to an open
// loop paced at N batches/second aggregate.
//
//   comlat-loadgen --port=7411 --threads=4 --batches=10000 --verify
//   comlat-loadgen --port=7411 --duration=5 --qps=2000 --json=out.json
//
// Exits non-zero on any protocol error, on a verification failure, or
// when not a single batch committed — the CI smoke job leans on that.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "svc/LoadGen.h"

#include <cstdio>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  Opts.checkKnown({"host", "port", "threads", "batches", "duration",
                   "ops-per-batch", "qps", "seed", "keyspace", "uf-elements",
                   "set-weight", "acc-weight", "uf-weight", "verify",
                   "privatized", "csv", "json", "metrics-out"});

  svc::LoadGenConfig Config;
  Config.Host = Opts.getString("host", "127.0.0.1");
  Config.Port = static_cast<uint16_t>(Opts.getUInt("port", 7411));
  Config.Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  Config.BatchesPerThread = Opts.getUInt("batches", 1000);
  Config.DurationSec = Opts.getDouble("duration", 0);
  Config.OpsPerBatch = static_cast<unsigned>(Opts.getUInt("ops-per-batch", 8));
  Config.TargetQps = Opts.getDouble("qps", 0);
  Config.Seed = Opts.getUInt("seed", 42);
  Config.KeySpace = Opts.getInt("keyspace", 1024);
  Config.UfElements = Opts.getUInt("uf-elements", 1024);
  Config.SetWeight = static_cast<unsigned>(Opts.getUInt("set-weight", 6));
  Config.AccWeight = static_cast<unsigned>(Opts.getUInt("acc-weight", 2));
  Config.UfWeight = static_cast<unsigned>(Opts.getUInt("uf-weight", 2));
  Config.Verify = Opts.getBool("verify");
  Config.Privatized = Opts.getBool("privatized");

  const svc::LoadGenStats Stats = svc::runLoadGen(Config);

  if (Opts.getBool("csv"))
    std::fputs(Stats.toCsv().c_str(), stdout);
  else
    std::fputs(Stats.toText().c_str(), stdout);

  const std::string JsonPath = Opts.getString("json", "");
  if (!JsonPath.empty()) {
    if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
      std::fputs(Stats.toJson().c_str(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "comlat-loadgen: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
  }

  const std::string MetricsPath = Opts.getString("metrics-out", "");
  if (!MetricsPath.empty()) {
    const std::string Text = svc::fetchMetricsText(Config.Host, Config.Port);
    if (Text.empty()) {
      std::fprintf(stderr, "comlat-loadgen: metrics fetch failed\n");
      return 1;
    }
    if (std::FILE *F = std::fopen(MetricsPath.c_str(), "w")) {
      std::fputs(Text.c_str(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "comlat-loadgen: cannot write %s\n",
                   MetricsPath.c_str());
      return 1;
    }
  }

  if (Stats.ProtocolErrors > 0) {
    std::fprintf(stderr, "comlat-loadgen: %llu protocol errors\n",
                 static_cast<unsigned long long>(Stats.ProtocolErrors));
    return 2;
  }
  if (Stats.VerifyRan && !Stats.VerifyOk) {
    std::fprintf(stderr, "comlat-loadgen: verification FAILED: %s\n",
                 Stats.VerifyDetail.c_str());
    return 3;
  }
  if (Stats.OkReplies == 0) {
    std::fprintf(stderr, "comlat-loadgen: no batch ever committed\n");
    return 4;
  }
  return 0;
}
