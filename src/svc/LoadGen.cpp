//===- svc/LoadGen.cpp - comlat-serve load generator -----------------------===//

#include "svc/LoadGen.h"

#include "support/Random.h"
#include "support/Timer.h"
#include "svc/Client.h"
#include "svc/Objects.h"
#include "svc/Replication.h"
#include "svc/Shard.h"
#include "svc/Snapshot.h"
#include "svc/Wal.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace comlat;
using namespace comlat::svc;

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

bool Client::connect(const std::string &Host, uint16_t Port,
                     std::string *Err) {
  close();
  struct addrinfo Hints {};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Res = nullptr;
  const std::string PortStr = std::to_string(Port);
  if (const int Rc = ::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res);
      Rc != 0) {
    if (Err)
      *Err = "resolve '" + Host + "': " + gai_strerror(Rc);
    return false;
  }
  for (struct addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype | SOCK_CLOEXEC, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    if (Err)
      *Err = "connect " + Host + ":" + PortStr + ": " + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  RecvBuf.clear();
  RecvPos = 0;
  Disconnected = false;
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::sendRaw(const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    const ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                             MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Disconnected = true; // EPIPE/ECONNRESET: the peer is gone
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::send(const Request &R) {
  std::string Bytes;
  encodeRequest(R, Bytes);
  return sendRaw(Bytes);
}

bool Client::peelOne(Response &R, bool &Got) {
  Got = false;
  std::string_view Rest(RecvBuf);
  Rest.remove_prefix(RecvPos);
  std::string_view Payload;
  size_t Consumed = 0;
  switch (peelFrame(Rest, Payload, Consumed)) {
  case FrameResult::NeedMore:
    if (RecvPos > 0 && RecvPos == RecvBuf.size()) {
      RecvBuf.clear();
      RecvPos = 0;
    }
    return true;
  case FrameResult::Malformed:
    return false;
  case FrameResult::Ok:
    break;
  }
  if (!decodeResponse(Payload, R))
    return false;
  RecvPos += Consumed;
  Got = true;
  return true;
}

bool Client::recvResponse(Response &R) {
  for (;;) {
    bool Got = false;
    if (!peelOne(R, Got))
      return false;
    if (Got)
      return true;
    char Buf[16 * 1024];
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      RecvBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Disconnected = true;
    return false; // EOF or hard error
  }
}

bool Client::recvRequest(Request &R) {
  for (;;) {
    std::string_view Rest(RecvBuf);
    Rest.remove_prefix(RecvPos);
    std::string_view Payload;
    size_t Consumed = 0;
    switch (peelFrame(Rest, Payload, Consumed)) {
    case FrameResult::Malformed:
      return false;
    case FrameResult::Ok: {
      std::string DecodeErr;
      if (!decodeRequest(Payload, R, DecodeErr))
        return false;
      RecvPos += Consumed;
      return true;
    }
    case FrameResult::NeedMore:
      if (RecvPos > 0 && RecvPos == RecvBuf.size()) {
        RecvBuf.clear();
        RecvPos = 0;
      }
      break;
    }
    char Buf[16 * 1024];
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      RecvBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Disconnected = true;
    return false; // EOF or hard error
  }
}

bool Client::pollResponses(std::vector<Response> &Out) {
  for (;;) {
    bool Got = true;
    while (Got) {
      Response R;
      if (!peelOne(R, Got))
        return false;
      if (Got)
        Out.push_back(std::move(R));
    }
    char Buf[16 * 1024];
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      RecvBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    if (N < 0 && errno == EINTR)
      continue;
    Disconnected = true; // EOF or hard error (decode failures return above)
    return false;
  }
}

bool Client::call(const Request &Req, Response &Resp) {
  if (!send(Req))
    return false;
  if (!recvResponse(Resp))
    return false;
  return Resp.ReqId == Req.ReqId;
}

//===----------------------------------------------------------------------===//
// Load generation
//===----------------------------------------------------------------------===//

namespace {

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One batch the server committed, as the client observed it.
struct CommittedBatch {
  uint64_t CommitSeq = 0;
  std::vector<Op> Ops;
  std::vector<int64_t> Results;
  /// Sharded replies only: the proxy's per-sub-batch annotations, in plan
  /// order (ascending shard).
  std::vector<ShardCommit> Shards;
  /// A partial commit: an Error reply whose annotations name sub-batches
  /// that did commit. Results is empty; the oracle applies the named ops
  /// without result comparison.
  bool Partial = false;
};

/// Finds `Key=value` in a Stats payload; false when absent.
bool statValue(const std::string &Text, const std::string &Key, uint64_t &V) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.size() > Key.size() + 1 &&
        Line.compare(0, Key.size(), Key) == 0 && Line[Key.size()] == '=') {
      V = std::strtoull(Line.c_str() + Key.size() + 1, nullptr, 10);
      return true;
    }
  return false;
}

/// Finds `Key=value` in a Stats payload as a string; "" when absent.
std::string statString(const std::string &Text, const std::string &Key) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.size() > Key.size() + 1 &&
        Line.compare(0, Key.size(), Key) == 0 && Line[Key.size()] == '=')
      return Line.substr(Key.size() + 1);
  return "";
}

/// Per-thread accumulation, merged after the join.
struct ThreadResult {
  uint64_t Sent = 0;
  uint64_t Ok = 0;
  uint64_t Busy = 0;
  uint64_t Errors = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t OpsCommitted = 0;
  uint64_t Disconnects = 0;
  uint64_t Unacked = 0;
  uint64_t Redirects = 0;
  uint64_t FollowerReads = 0;
  uint64_t MonotonicViolations = 0;
  LatencyHistogram Rtt;
  /// Round trips split by route kind (at most one shard annotation =
  /// fastpath, several = split) — the client-side mirror of the proxy's
  /// comlat_proxy_rtt_* families.
  LatencyHistogram RttFast;
  LatencyHistogram RttSplit;
  /// Direct mode only: the thread's ShardClient counters.
  ShardClientCounters ClientStats;
  std::vector<CommittedBatch> Committed;
};

/// Shard-affinity key pools: the keys of [0, KeySpace) grouped by the
/// shard the ring sends their set ops to, empty groups dropped. Built
/// once per run from the proxy's published ring geometry.
using ShardKeyPools = std::vector<std::vector<int64_t>>;

/// \p Pool, when set, restricts set-op keys to one shard's pool (the
/// batch generator picks a pool per batch, so the whole batch's set ops
/// land on a single shard and fast-path through the proxy).
Op genOp(Rng &R, const LoadGenConfig &Config,
         const std::vector<int64_t> *Pool = nullptr) {
  Op O;
  const unsigned Total =
      Config.SetWeight + Config.AccWeight + Config.UfWeight;
  const uint64_t Pick = R.nextBelow(std::max(1u, Total));
  if (Pick < Config.SetWeight) {
    O.Obj = static_cast<uint8_t>(ObjectId::Set);
    O.Method = static_cast<uint8_t>(R.nextBelow(3));
    O.A = Pool ? (*Pool)[R.nextBelow(Pool->size())]
               : R.nextInRange(0, std::max<int64_t>(1, Config.KeySpace) - 1);
  } else if (Pick < Config.SetWeight + Config.AccWeight) {
    O.Obj = static_cast<uint8_t>(ObjectId::Acc);
    // Mostly increments: reads serialize against every increment.
    O.Method = R.nextBelow(8) == 0 ? AccRead : AccIncrement;
    O.A = R.nextInRange(1, 16);
  } else {
    O.Obj = static_cast<uint8_t>(ObjectId::Uf);
    O.Method = static_cast<uint8_t>(R.nextBelow(2));
    const int64_t N = static_cast<int64_t>(Config.UfElements);
    O.A = R.nextInRange(0, N - 1);
    O.B = R.nextInRange(0, N - 1);
  }
  return O;
}

void classifyReply(const Response &Resp, const Request &Req, ThreadResult &TR,
                   bool Record) {
  switch (Resp.St) {
  case Status::Ok:
    ++TR.Ok;
    TR.OpsCommitted += Resp.Results.size();
    if (Resp.Results.size() != Req.Ops.size()) {
      ++TR.ProtocolErrors; // an Ok reply must answer every op
      return;
    }
    if (Record)
      TR.Committed.push_back(
          {Resp.CommitSeq, Req.Ops, Resp.Results, Resp.Shards, false});
    break;
  case Status::Busy:
    ++TR.Busy;
    break;
  case Status::Error:
    ++TR.Errors;
    // A sharded Error reply with annotations is a partial commit: those
    // sub-batches did execute and the oracle must account for them.
    if (Record && !Resp.Shards.empty())
      TR.Committed.push_back(
          {Resp.CommitSeq, Req.Ops, {}, Resp.Shards, true});
    break;
  case Status::Redirect:
    ++TR.Redirects;
    break;
  }
}

/// A read-only op for follower-directed batches: followers Redirect any
/// batch containing a mutation, so the mix pins the read vocabulary
/// (SetContains / AccRead / UfFind).
Op genReadOp(Rng &R, const LoadGenConfig &Config) {
  Op O;
  const uint64_t Pick = R.nextBelow(3);
  if (Pick == 0) {
    O.Obj = static_cast<uint8_t>(ObjectId::Set);
    O.Method = SetContains;
    O.A = R.nextInRange(0, std::max<int64_t>(1, Config.KeySpace) - 1);
  } else if (Pick == 1) {
    O.Obj = static_cast<uint8_t>(ObjectId::Acc);
    O.Method = AccRead;
  } else {
    O.Obj = static_cast<uint8_t>(ObjectId::Uf);
    O.Method = UfFind;
    O.A = R.nextInRange(0, static_cast<int64_t>(Config.UfElements) - 1);
  }
  return O;
}

void runClosedLoop(const LoadGenConfig &Config, unsigned ThreadIdx,
                   const ShardKeyPools *Pools, ThreadResult &TR) {
  Client C;
  if (!C.connect(Config.Host, Config.Port)) {
    ++TR.ProtocolErrors;
    return;
  }
  // Follower-read mode: a second connection per thread, carrying the
  // read-only share of the batch budget. One connection = one session, so
  // its reply stamps (the follower's applied watermark) must never go
  // backwards.
  Client ReadC;
  const bool ReadMode = !Config.ReadHost.empty();
  if (ReadMode && !ReadC.connect(Config.ReadHost, Config.ReadPort)) {
    ++TR.ProtocolErrors;
    return;
  }
  uint64_t ReadWatermark = 0;
  Rng R(Config.Seed ^ (0x9E3779B97F4A7C15ull * (ThreadIdx + 1)));
  const bool Record = Config.Verify || !Config.AckedLogPath.empty();
  Timer Wall;
  for (uint64_t I = 0;; ++I) {
    if (Config.DurationSec > 0) {
      if (Wall.seconds() >= Config.DurationSec)
        break;
    } else if (I >= Config.BatchesPerThread) {
      break;
    }
    Request Req;
    Req.ReqId = (static_cast<uint64_t>(ThreadIdx + 1) << 40) | I;
    Req.Type = MsgType::Batch;
    const bool ToFollower =
        ReadMode &&
        R.nextBelow(1000) <
            static_cast<uint64_t>(Config.ReadFraction * 1000);
    const std::vector<int64_t> *Pool =
        Pools ? &(*Pools)[R.nextBelow(Pools->size())] : nullptr;
    for (unsigned K = 0; K != Config.OpsPerBatch; ++K)
      Req.Ops.push_back(ToFollower ? genReadOp(R, Config)
                                   : genOp(R, Config, Pool));
    const uint64_t T0 = nowUs();
    Response Resp;
    if (!(ToFollower ? ReadC : C).call(Req, Resp)) {
      if (Config.TolerateDisconnect &&
          (ToFollower ? ReadC : C).disconnected()) {
        // The server vanished mid-call: this batch was sent but never
        // acknowledged, and the durability contract says nothing about it.
        ++TR.Disconnects;
        ++TR.Unacked;
        return;
      }
      ++TR.ProtocolErrors;
      return;
    }
    ++TR.Sent;
    const uint64_t ElapsedUs = nowUs() - T0;
    TR.Rtt.addMicros(ElapsedUs);
    (Resp.Shards.size() > 1 ? TR.RttSplit : TR.RttFast).addMicros(ElapsedUs);
    if (ToFollower) {
      // Follower reads commit nothing and stay out of the verify oracle;
      // they are tallied apart from leader replies. The reply stamp is
      // the follower's applied watermark — on one connection it must
      // never go backwards (monotonic reads).
      switch (Resp.St) {
      case Status::Ok:
        ++TR.FollowerReads;
        if (Resp.Results.size() != Req.Ops.size())
          ++TR.ProtocolErrors; // an Ok reply must answer every op
        if (Resp.CommitSeq < ReadWatermark)
          ++TR.MonotonicViolations;
        else
          ReadWatermark = Resp.CommitSeq;
        break;
      case Status::Busy:
        ++TR.Busy;
        break;
      case Status::Error:
        ++TR.Errors;
        break;
      case Status::Redirect:
        ++TR.Redirects; // a read batch redirected is a server bug;
        ++TR.ProtocolErrors;
        break;
      }
    } else {
      classifyReply(Resp, Req, TR, Record);
    }
  }
}

void runOpenLoop(const LoadGenConfig &Config, unsigned ThreadIdx,
                 const ShardKeyPools *Pools, ThreadResult &TR) {
  Client C;
  if (!C.connect(Config.Host, Config.Port)) {
    ++TR.ProtocolErrors;
    return;
  }
  Rng R(Config.Seed ^ (0x9E3779B97F4A7C15ull * (ThreadIdx + 1)));
  const double PerThreadQps =
      Config.TargetQps / std::max(1u, Config.Threads);
  const uint64_t IntervalUs =
      PerThreadQps > 0 ? static_cast<uint64_t>(1e6 / PerThreadQps) : 1;

  struct Outstanding {
    Request Req;
    uint64_t SentUs;
  };
  std::unordered_map<uint64_t, Outstanding> InFlight;

  const uint64_t StartUs = nowUs();
  const uint64_t DeadlineUs =
      Config.DurationSec > 0
          ? StartUs + static_cast<uint64_t>(Config.DurationSec * 1e6)
          : UINT64_MAX;
  uint64_t NextSendUs = StartUs;
  uint64_t Sent = 0;
  bool Broken = false;
  bool Lost = false; // a tolerated disconnect ended the run
  const bool Record = Config.Verify || !Config.AckedLogPath.empty();

  // Either counts the failure as a protocol error or, when the harness
  // expects the server to die under it, as a tolerated disconnect.
  auto OnFailure = [&] {
    if (Config.TolerateDisconnect && C.disconnected()) {
      ++TR.Disconnects;
      Lost = true;
    } else {
      ++TR.ProtocolErrors;
    }
    Broken = true;
  };

  auto Absorb = [&](std::vector<Response> &Replies) {
    for (Response &Resp : Replies) {
      auto It = InFlight.find(Resp.ReqId);
      if (It == InFlight.end()) {
        ++TR.ProtocolErrors; // a reply we never asked for
        continue;
      }
      const uint64_t ElapsedUs = nowUs() - It->second.SentUs;
      TR.Rtt.addMicros(ElapsedUs);
      (Resp.Shards.size() > 1 ? TR.RttSplit : TR.RttFast)
          .addMicros(ElapsedUs);
      classifyReply(Resp, It->second.Req, TR, Record);
      InFlight.erase(It);
    }
    Replies.clear();
  };

  std::vector<Response> Replies;
  for (;;) {
    const uint64_t Now = nowUs();
    const bool DoneSending =
        Now >= DeadlineUs ||
        (Config.DurationSec <= 0 && Sent >= Config.BatchesPerThread);
    if (DoneSending)
      break;
    if (Now >= NextSendUs) {
      Request Req;
      Req.ReqId = (static_cast<uint64_t>(ThreadIdx + 1) << 40) | Sent;
      Req.Type = MsgType::Batch;
      const std::vector<int64_t> *Pool =
          Pools ? &(*Pools)[R.nextBelow(Pools->size())] : nullptr;
      for (unsigned K = 0; K != Config.OpsPerBatch; ++K)
        Req.Ops.push_back(genOp(R, Config, Pool));
      const uint64_t SentAt = nowUs();
      if (!C.send(Req)) {
        OnFailure();
        break;
      }
      ++Sent;
      ++TR.Sent;
      InFlight.emplace(Req.ReqId, Outstanding{std::move(Req), SentAt});
      // Schedule from the previous slot, not from "now": open loop means
      // the send clock does not stretch when the server slows down.
      NextSendUs += IntervalUs;
      if (NextSendUs < Now)
        NextSendUs = Now; // do not build an unbounded send debt
    }
    if (!C.pollResponses(Replies)) {
      OnFailure();
      break;
    }
    Absorb(Replies);
    const uint64_t Now2 = nowUs();
    if (NextSendUs > Now2) {
      struct pollfd P = {C.fd(), POLLIN, 0};
      ::poll(&P, 1, static_cast<int>((NextSendUs - Now2) / 1000));
    }
  }

  // Collect the stragglers: every sent frame is owed exactly one reply.
  const uint64_t DrainDeadline = nowUs() + 10 * 1000 * 1000;
  while (!Broken && !InFlight.empty() && nowUs() < DrainDeadline) {
    Response Resp;
    if (!C.recvResponse(Resp)) {
      OnFailure();
      break;
    }
    Replies.push_back(std::move(Resp));
    Absorb(Replies);
  }
  if (Lost)
    TR.Unacked += InFlight.size(); // sent, never acknowledged: no contract
  else
    TR.ProtocolErrors += InFlight.size(); // unanswered = dropped replies
}

ShardClientConfig directClientConfig(const LoadGenConfig &Config) {
  ShardClientConfig CC;
  CC.ProxyHost = Config.Host;
  CC.ProxyPort = Config.Port;
  CC.Direct = true;
  CC.Window = std::max(1u, Config.DirectWindow);
  CC.UfElements = Config.UfElements;
  return CC;
}

/// One direct-mode completion's bookkeeping, shared by both direct loops.
/// A ConnLost completion (the routed connection died before a reply — the
/// batch's fate is unknown) counts Unacked under the crash harness and a
/// protocol error anywhere else; everything with a real reply classifies
/// like any other response. Returns false when the thread should stop
/// (an intolerable loss).
bool absorbDirect(const LoadGenConfig &Config, ClientCompletion &Done,
                  const Request &Req, uint64_t ElapsedUs, ThreadResult &TR,
                  bool Record, bool &LostAny) {
  TR.Rtt.addMicros(ElapsedUs);
  (Done.R.Shards.size() > 1 ? TR.RttSplit : TR.RttFast)
      .addMicros(ElapsedUs);
  if (Done.ConnLost) {
    if (Config.TolerateDisconnect) {
      // The ShardClient re-dials under backoff, so keep driving: the
      // restarted backend picks the load back up mid-run.
      LostAny = true;
      ++TR.Unacked;
      return true;
    }
    ++TR.ProtocolErrors;
    return false;
  }
  classifyReply(Done.R, Req, TR, Record);
  return true;
}

/// Direct-mode counterpart of runClosedLoop: identical pacing, op
/// generation and ReqId layout (the verify oracle cannot tell the modes
/// apart), but every batch routes client-side through a ShardClient.
void runDirectClosedLoop(const LoadGenConfig &Config, unsigned ThreadIdx,
                         const ShardKeyPools *Pools,
                         const std::string &StatsText, ThreadResult &TR) {
  ShardClient SC(directClientConfig(Config));
  if (!SC.bootstrapFromText(StatsText)) {
    ++TR.ProtocolErrors;
    return;
  }
  Rng R(Config.Seed ^ (0x9E3779B97F4A7C15ull * (ThreadIdx + 1)));
  const bool Record = Config.Verify || !Config.AckedLogPath.empty();
  bool LostAny = false;
  Timer Wall;
  for (uint64_t I = 0;; ++I) {
    if (Config.DurationSec > 0) {
      if (Wall.seconds() >= Config.DurationSec)
        break;
    } else if (I >= Config.BatchesPerThread) {
      break;
    }
    Request Req;
    Req.ReqId = (static_cast<uint64_t>(ThreadIdx + 1) << 40) | I;
    Req.Type = MsgType::Batch;
    const std::vector<int64_t> *Pool =
        Pools ? &(*Pools)[R.nextBelow(Pools->size())] : nullptr;
    for (unsigned K = 0; K != Config.OpsPerBatch; ++K)
      Req.Ops.push_back(genOp(R, Config, Pool));
    const uint64_t T0 = nowUs();
    ClientCompletion Done;
    if (!SC.call(Req.Ops, Done)) {
      ++TR.ProtocolErrors; // reply timeout: somebody is wedged
      break;
    }
    ++TR.Sent;
    if (!absorbDirect(Config, Done, Req, nowUs() - T0, TR, Record, LostAny))
      break;
  }
  if (LostAny)
    ++TR.Disconnects;
  TR.ClientStats = SC.counters();
}

/// Direct-mode counterpart of runOpenLoop: the same fixed send schedule,
/// but submissions pipeline through the ShardClient's per-connection
/// windows — this is the loop that demonstrably engages depth > 1.
void runDirectOpenLoop(const LoadGenConfig &Config, unsigned ThreadIdx,
                       const ShardKeyPools *Pools,
                       const std::string &StatsText, ThreadResult &TR) {
  ShardClient SC(directClientConfig(Config));
  if (!SC.bootstrapFromText(StatsText)) {
    ++TR.ProtocolErrors;
    return;
  }
  Rng R(Config.Seed ^ (0x9E3779B97F4A7C15ull * (ThreadIdx + 1)));
  const double PerThreadQps =
      Config.TargetQps / std::max(1u, Config.Threads);
  const uint64_t IntervalUs =
      PerThreadQps > 0 ? static_cast<uint64_t>(1e6 / PerThreadQps) : 1;

  struct Outstanding {
    Request Req;
    uint64_t SentUs;
  };
  std::unordered_map<uint64_t, Outstanding> InFlight;

  const uint64_t StartUs = nowUs();
  const uint64_t DeadlineUs =
      Config.DurationSec > 0
          ? StartUs + static_cast<uint64_t>(Config.DurationSec * 1e6)
          : UINT64_MAX;
  uint64_t NextSendUs = StartUs;
  uint64_t Sent = 0;
  bool LostAny = false;
  bool Broken = false;
  const bool Record = Config.Verify || !Config.AckedLogPath.empty();

  std::vector<ClientCompletion> Done;
  auto Absorb = [&] {
    for (ClientCompletion &C : Done) {
      auto It = InFlight.find(C.Token);
      if (It == InFlight.end()) {
        ++TR.ProtocolErrors; // a completion we never asked for
        continue;
      }
      if (!absorbDirect(Config, C, It->second.Req, nowUs() - It->second.SentUs,
                        TR, Record, LostAny))
        Broken = true;
      InFlight.erase(It);
    }
    Done.clear();
  };

  while (!Broken) {
    const uint64_t Now = nowUs();
    const bool DoneSending =
        Now >= DeadlineUs ||
        (Config.DurationSec <= 0 && Sent >= Config.BatchesPerThread);
    if (DoneSending)
      break;
    // One send per iteration, tightly interleaved with a zero-timeout
    // reply drain: on a saturated link this keeps the pipeline full
    // without letting replies back up (bursting submissions measurably
    // hurts — the reply path stalls while the burst encodes).
    if (Now >= NextSendUs) {
      Request Req;
      Req.ReqId = (static_cast<uint64_t>(ThreadIdx + 1) << 40) | Sent;
      Req.Type = MsgType::Batch;
      const std::vector<int64_t> *Pool =
          Pools ? &(*Pools)[R.nextBelow(Pools->size())] : nullptr;
      for (unsigned K = 0; K != Config.OpsPerBatch; ++K)
        Req.Ops.push_back(genOp(R, Config, Pool));
      const uint64_t Token = Req.ReqId;
      const uint64_t SentAt = nowUs();
      std::vector<Op> Ops = Req.Ops;
      InFlight.emplace(Token, Outstanding{std::move(Req), SentAt});
      // submit() blocks only at a full window — that stall is the
      // pipelining backpressure, absorbed by the send-debt clamp below.
      SC.submit(Token, std::move(Ops));
      ++Sent;
      ++TR.Sent;
      NextSendUs += IntervalUs;
      if (NextSendUs < Now)
        NextSendUs = Now; // do not build an unbounded send debt
    }
    const uint64_t Now2 = nowUs();
    const int WaitMs =
        NextSendUs > Now2 ? static_cast<int>((NextSendUs - Now2) / 1000) : 0;
    if (SC.poll(Done, WaitMs) == 0 && WaitMs > 0 && SC.inflight() == 0)
      ::poll(nullptr, 0, WaitMs); // nothing in flight: just pace
    Absorb();
  }

  // Collect the stragglers: every submission is owed one completion.
  if (!Broken) {
    SC.drain(Done, 10.0);
    Absorb();
  }
  if (LostAny) {
    TR.Unacked += InFlight.size();
    ++TR.Disconnects;
  } else {
    TR.ProtocolErrors += InFlight.size(); // unanswered = dropped replies
  }
  TR.ClientStats = SC.counters();
}

std::string jsonNum(double V) {
  char Buf[64];
  if (V == static_cast<double>(static_cast<int64_t>(V)))
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

std::string LoadGenStats::toJson() const {
  std::map<std::string, double> KV = {
      {"loadgen_sent", static_cast<double>(Sent)},
      {"loadgen_ok_replies", static_cast<double>(OkReplies)},
      {"loadgen_busy_replies", static_cast<double>(BusyReplies)},
      {"loadgen_error_replies", static_cast<double>(ErrorReplies)},
      {"loadgen_protocol_errors", static_cast<double>(ProtocolErrors)},
      {"loadgen_ops_committed", static_cast<double>(OpsCommitted)},
      {"loadgen_wall_sec", WallSec},
      {"loadgen_qps", achievedQps()},
      {"loadgen_rtt_mean_us", Rtt.meanMicros()},
      {"loadgen_rtt_p50_us",
       static_cast<double>(Rtt.quantileUpperBoundMicros(0.5))},
      {"loadgen_rtt_p99_us",
       static_cast<double>(Rtt.quantileUpperBoundMicros(0.99))},
      {"loadgen_seed", static_cast<double>(Seed)},
      {"loadgen_verify_ran", VerifyRan ? 1.0 : 0.0},
      {"loadgen_verify_ok", VerifyOk ? 1.0 : 0.0},
      {"loadgen_privatized", Privatized ? 1.0 : 0.0},
      {"loadgen_durable", Durable ? 1.0 : 0.0},
      {"loadgen_disconnects", static_cast<double>(Disconnects)},
      {"loadgen_unacked", static_cast<double>(Unacked)},
      {"loadgen_redirect_replies", static_cast<double>(RedirectReplies)},
      {"loadgen_follower_reads", static_cast<double>(FollowerReads)},
      {"loadgen_monotonic_violations",
       static_cast<double>(MonotonicViolations)},
      {"loadgen_shards", static_cast<double>(Shards)},
      {"loadgen_ring_vnodes", static_cast<double>(RingVNodes)},
      {"loadgen_ring_seed", static_cast<double>(RingSeed)},
      {"loadgen_shard_affinity", ShardAffinity ? 1.0 : 0.0},
      {"loadgen_direct", Direct ? 1.0 : 0.0},
      {"loadgen_direct_batches", static_cast<double>(DirectBatches)},
      {"loadgen_proxied_batches", static_cast<double>(ProxiedBatches)},
      {"loadgen_client_misroutes", static_cast<double>(ClientMisroutes)},
      {"loadgen_client_redirects", static_cast<double>(ClientRedirects)},
      {"loadgen_client_reconnects", static_cast<double>(ClientReconnects)},
      {"loadgen_client_rebootstraps",
       static_cast<double>(ClientRebootstraps)},
      {"loadgen_client_busy_retries",
       static_cast<double>(ClientBusyRetries)},
      {"loadgen_direct_max_inflight",
       static_cast<double>(DirectMaxInflight)},
      {"loadgen_rtt_fastpath_mean_us", RttFast.meanMicros()},
      {"loadgen_rtt_fastpath_p99_us",
       static_cast<double>(RttFast.quantileUpperBoundMicros(0.99))},
      {"loadgen_rtt_fastpath_count", static_cast<double>(RttFast.Count)},
      {"loadgen_rtt_split_mean_us", RttSplit.meanMicros()},
      {"loadgen_rtt_split_p99_us",
       static_cast<double>(RttSplit.quantileUpperBoundMicros(0.99))},
      {"loadgen_rtt_split_count", static_cast<double>(RttSplit.Count)},
  };
  std::string Out = "{\n";
  bool First = true;
  for (const auto &[K, V] : KV) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  \"" + K + "\": " + jsonNum(V);
  }
  Out += ",\n  \"loadgen_role\": \"" + Role + "\"";
  Out += "\n}\n";
  return Out;
}

std::string LoadGenStats::toCsv() const {
  std::string Out = "sent,ok,busy,error,protocol_errors,ops_committed,"
                    "wall_sec,qps,rtt_mean_us,rtt_p50_us,rtt_p99_us,seed,"
                    "verify_ok,privatized,durable,disconnects,unacked,"
                    "redirects,follower_reads,monotonic_violations,role,"
                    "shards,ring_vnodes,ring_seed,shard_affinity,direct,"
                    "direct_batches,proxied_batches,client_misroutes,"
                    "direct_max_inflight,rtt_fastpath_mean_us,"
                    "rtt_split_mean_us\n";
  Out += std::to_string(Sent) + "," + std::to_string(OkReplies) + "," +
         std::to_string(BusyReplies) + "," + std::to_string(ErrorReplies) +
         "," + std::to_string(ProtocolErrors) + "," +
         std::to_string(OpsCommitted) + "," + jsonNum(WallSec) + "," +
         jsonNum(achievedQps()) + "," + jsonNum(Rtt.meanMicros()) + "," +
         std::to_string(Rtt.quantileUpperBoundMicros(0.5)) + "," +
         std::to_string(Rtt.quantileUpperBoundMicros(0.99)) + "," +
         std::to_string(Seed) + "," + (VerifyOk ? "1" : "0") + "," +
         (Privatized ? "1" : "0") + "," + (Durable ? "1" : "0") + "," +
         std::to_string(Disconnects) + "," + std::to_string(Unacked) + "," +
         std::to_string(RedirectReplies) + "," +
         std::to_string(FollowerReads) + "," +
         std::to_string(MonotonicViolations) + "," + Role + "," +
         std::to_string(Shards) + "," + std::to_string(RingVNodes) + "," +
         std::to_string(RingSeed) + "," + (ShardAffinity ? "1" : "0") + "," +
         (Direct ? "1" : "0") + "," + std::to_string(DirectBatches) + "," +
         std::to_string(ProxiedBatches) + "," +
         std::to_string(ClientMisroutes) + "," +
         std::to_string(DirectMaxInflight) + "," +
         jsonNum(RttFast.meanMicros()) + "," +
         jsonNum(RttSplit.meanMicros()) + "\n";
  return Out;
}

std::string LoadGenStats::toText() const {
  std::string Out;
  Out += "sent:             " + std::to_string(Sent) + "\n";
  Out += "ok replies:       " + std::to_string(OkReplies) + "\n";
  Out += "busy replies:     " + std::to_string(BusyReplies) + "\n";
  Out += "error replies:    " + std::to_string(ErrorReplies) + "\n";
  Out += "protocol errors:  " + std::to_string(ProtocolErrors) + "\n";
  Out += "ops committed:    " + std::to_string(OpsCommitted) + "\n";
  Out += "wall sec:         " + jsonNum(WallSec) + "\n";
  Out += "qps:              " + jsonNum(achievedQps()) + "\n";
  Out += "rtt mean us:      " + jsonNum(Rtt.meanMicros()) + "\n";
  Out += "rtt p50 us:       " +
         std::to_string(Rtt.quantileUpperBoundMicros(0.5)) + "\n";
  Out += "rtt p99 us:       " +
         std::to_string(Rtt.quantileUpperBoundMicros(0.99)) + "\n";
  Out += "seed:             " + std::to_string(Seed) + "\n";
  Out += std::string("privatized:       ") + (Privatized ? "on" : "off") +
         "\n";
  Out += std::string("durable:          ") + (Durable ? "on" : "off") + "\n";
  if (!Role.empty())
    Out += "role:             " + Role + "\n";
  if (Shards)
    Out += "shards:           " + std::to_string(Shards) +
           " (vnodes=" + std::to_string(RingVNodes) +
           " seed=" + std::to_string(RingSeed) +
           (ShardAffinity ? ", shard-affine keys" : "") + ")\n";
  if (Disconnects || Unacked) {
    Out += "disconnects:      " + std::to_string(Disconnects) + "\n";
    Out += "unacked:          " + std::to_string(Unacked) + "\n";
  }
  if (RedirectReplies)
    Out += "redirects:        " + std::to_string(RedirectReplies) + "\n";
  if (DirectRequested) {
    Out += std::string("direct routing:   ") +
           (Direct ? "engaged" : "requested, fell back to proxy") + "\n";
    Out += "direct batches:   " + std::to_string(DirectBatches) +
           " (proxied " + std::to_string(ProxiedBatches) + ")\n";
    Out += "max inflight:     " + std::to_string(DirectMaxInflight) + "\n";
    Out += "client misroutes: " + std::to_string(ClientMisroutes) + "\n";
    if (ClientRedirects || ClientReconnects || ClientRebootstraps)
      Out += "client recovery:  " + std::to_string(ClientRedirects) +
             " redirects, " + std::to_string(ClientReconnects) +
             " reconnects, " + std::to_string(ClientRebootstraps) +
             " rebootstraps\n";
  }
  if (RttFast.Count || RttSplit.Count) {
    Out += "rtt fastpath us:  " + jsonNum(RttFast.meanMicros()) + " mean, " +
           std::to_string(RttFast.quantileUpperBoundMicros(0.99)) +
           " p99 (" + std::to_string(RttFast.Count) + " samples)\n";
    Out += "rtt split us:     " + jsonNum(RttSplit.meanMicros()) + " mean, " +
           std::to_string(RttSplit.quantileUpperBoundMicros(0.99)) +
           " p99 (" + std::to_string(RttSplit.Count) + " samples)\n";
  }
  if (FollowerReads) {
    Out += "follower reads:   " + std::to_string(FollowerReads) + "\n";
    Out += "monotonic viols:  " + std::to_string(MonotonicViolations) + "\n";
  }
  if (VerifyRan)
    Out += std::string("verify:           ") + (VerifyOk ? "ok" : "FAILED") +
           (VerifyDetail.empty() ? "" : " (" + VerifyDetail + ")") + "\n";
  return Out;
}

namespace {

/// Fetches one shard's snapshot-state dump through the proxy's SnapState
/// relay. \p Ok reports transport/status failure apart from empty text.
std::string fetchSnapState(const std::string &Host, uint16_t Port,
                           uint32_t Shard, bool &Ok) {
  Client C;
  Request Req;
  Req.ReqId = 5;
  Req.Type = MsgType::SnapState;
  Req.Shard = Shard;
  Response Resp;
  Ok = C.connect(Host, Port) && C.call(Req, Resp) && Resp.St == Status::Ok;
  return Ok ? Resp.Text : "";
}

} // namespace

LoadGenStats svc::runLoadGen(const LoadGenConfig &Config) {
  LoadGenStats Stats;
  Stats.Seed = Config.Seed;
  Stats.Privatized = Config.Privatized;
  // Echo the server's durable mode, role and sharded topology so result
  // files are self-describing (observed via the Stats frame, not
  // configured). Soft: an old or dead server just reads as durable=off
  // with no role.
  const std::string StatsText = fetchStatsText(Config.Host, Config.Port);
  Stats.Durable = StatsText.find("durable=1") != std::string::npos;
  Stats.Role = statString(StatsText, "role");
  statValue(StatsText, "shards", Stats.Shards);
  statValue(StatsText, "ring_vnodes", Stats.RingVNodes);
  statValue(StatsText, "ring_seed", Stats.RingSeed);

  // Against a proxy, Verify switches to the per-shard oracle set: each
  // backend's pre-run snapshot seeds one oracle (the backends may carry
  // recovered state), every reply's annotations replay into the oracle the
  // recomputed routing plan names, and the final states must match both
  // per shard and under the proxy's lattice merge.
  const bool Sharded = Stats.Role == "proxy" && Stats.Shards > 0;
  // Direct routing engages only against a proxy whose Stats frame published
  // a routable ring, and not when follower reads split the send path (those
  // keep the legacy single-connection loop). A plain server quietly stays
  // proxied: DirectRequested vs Direct tells the two apart in result files.
  const bool Direct = Config.Direct && Sharded && Config.ReadHost.empty();
  Stats.DirectRequested = Config.Direct;
  Stats.Direct = Direct;
  std::vector<std::string> PreSnaps;
  if (Config.Verify && Sharded) {
    for (uint32_t S = 0; S != Stats.Shards; ++S) {
      bool Ok = false;
      PreSnaps.push_back(fetchSnapState(Config.Host, Config.Port, S, Ok));
      if (!Ok) {
        ++Stats.ProtocolErrors;
        Stats.VerifyRan = true;
        Stats.VerifyDetail =
            "pre-run snapstate fetch failed for shard " + std::to_string(S);
        return Stats;
      }
    }
  }

  // Shard-affinity pools: bucket the set keyspace by the ring (rebuilt
  // from the proxy's published geometry), drop shards that own no keys.
  ShardKeyPools Pools;
  if (Config.ShardAffinity && Sharded && Stats.RingVNodes > 0) {
    const HashRing AffinityRing(static_cast<unsigned>(Stats.Shards),
                                static_cast<unsigned>(Stats.RingVNodes),
                                Stats.RingSeed);
    const ShardRouter AffinityRouter(AffinityRing);
    ShardKeyPools ByShard(Stats.Shards);
    for (int64_t K = 0; K < std::max<int64_t>(1, Config.KeySpace); ++K)
      ByShard[AffinityRouter.shardForOp(
                  {static_cast<uint8_t>(ObjectId::Set), SetAdd, K, 0})]
          .push_back(K);
    for (std::vector<int64_t> &Pool : ByShard)
      if (!Pool.empty())
        Pools.push_back(std::move(Pool));
    Stats.ShardAffinity = !Pools.empty();
  }
  const ShardKeyPools *PoolsPtr = Pools.empty() ? nullptr : &Pools;

  std::vector<ThreadResult> Results(std::max(1u, Config.Threads));
  std::vector<std::thread> Threads;
  Timer Wall;
  for (unsigned T = 0; T != std::max(1u, Config.Threads); ++T)
    Threads.emplace_back([&, T] {
      if (Direct) {
        if (Config.TargetQps > 0)
          runDirectOpenLoop(Config, T, PoolsPtr, StatsText, Results[T]);
        else
          runDirectClosedLoop(Config, T, PoolsPtr, StatsText, Results[T]);
      } else if (Config.TargetQps > 0) {
        runOpenLoop(Config, T, PoolsPtr, Results[T]);
      } else {
        runClosedLoop(Config, T, PoolsPtr, Results[T]);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Stats.WallSec = Wall.seconds();

  std::vector<CommittedBatch> Committed;
  for (ThreadResult &TR : Results) {
    Stats.Sent += TR.Sent;
    Stats.OkReplies += TR.Ok;
    Stats.BusyReplies += TR.Busy;
    Stats.ErrorReplies += TR.Errors;
    Stats.ProtocolErrors += TR.ProtocolErrors;
    Stats.OpsCommitted += TR.OpsCommitted;
    Stats.Disconnects += TR.Disconnects;
    Stats.Unacked += TR.Unacked;
    Stats.RedirectReplies += TR.Redirects;
    Stats.FollowerReads += TR.FollowerReads;
    Stats.MonotonicViolations += TR.MonotonicViolations;
    Stats.Rtt.merge(TR.Rtt);
    Stats.RttFast.merge(TR.RttFast);
    Stats.RttSplit.merge(TR.RttSplit);
    Stats.DirectBatches += TR.ClientStats.DirectBatches;
    Stats.ProxiedBatches += TR.ClientStats.ProxiedBatches;
    Stats.ClientMisroutes += TR.ClientStats.Misroutes;
    Stats.ClientRedirects += TR.ClientStats.Redirects;
    Stats.ClientReconnects += TR.ClientStats.Reconnects;
    Stats.ClientRebootstraps += TR.ClientStats.Rebootstraps;
    Stats.ClientBusyRetries += TR.ClientStats.BusyRetries;
    Stats.DirectMaxInflight =
        std::max(Stats.DirectMaxInflight, TR.ClientStats.MaxConnInflight);
    for (CommittedBatch &B : TR.Committed)
      Committed.push_back(std::move(B));
  }

  if (!Config.Verify && Config.AckedLogPath.empty())
    return Stats;

  std::sort(Committed.begin(), Committed.end(),
            [](const CommittedBatch &A, const CommittedBatch &B) {
              return A.CommitSeq < B.CommitSeq;
            });

  if (!Config.AckedLogPath.empty()) {
    // Ground truth for the crash harness: one line per acknowledged batch,
    // `seq nops (obj method a b)* res*` — exactly what the recovered
    // server must still know.
    std::ofstream Out(Config.AckedLogPath, std::ios::trunc);
    for (const CommittedBatch &B : Committed) {
      Out << B.CommitSeq << ' ' << B.Ops.size();
      for (const Op &O : B.Ops)
        Out << ' ' << static_cast<unsigned>(O.Obj) << ' '
            << static_cast<unsigned>(O.Method) << ' ' << O.A << ' ' << O.B;
      for (const int64_t V : B.Results)
        Out << ' ' << V;
      Out << '\n';
    }
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "loadgen: failed writing acked log '%s'\n",
                   Config.AckedLogPath.c_str());
      ++Stats.ProtocolErrors; // the harness must notice missing ground truth
    }
  }

  if (!Config.Verify)
    return Stats;

  if (Sharded) {
    Stats.VerifyRan = true;
    Stats.VerifyOk = true;
    auto Fail = [&Stats](const std::string &Why) {
      Stats.VerifyOk = false;
      if (Stats.VerifyDetail.empty())
        Stats.VerifyDetail = Why;
    };

    // Rebuild the proxy's router from its published ring geometry and
    // re-derive every batch's plan: the reply annotations must agree with
    // it sub for sub — an end-to-end witness that the proxy routed every
    // op where the spec classification says it belongs.
    const HashRing Ring(static_cast<unsigned>(Stats.Shards),
                        static_cast<unsigned>(Stats.RingVNodes),
                        Stats.RingSeed);
    const ShardRouter Router(Ring);
    struct SubRec {
      uint64_t Seq = 0;
      std::vector<Op> Ops;
      std::vector<int64_t> Results;
      bool Partial = false;
    };
    std::vector<std::vector<SubRec>> PerShard(Stats.Shards);
    for (const CommittedBatch &B : Committed) {
      const RoutePlan Plan = Router.plan(B.Ops);
      auto Slice = [&B](const RoutePlan::Sub &Sub, bool WithResults) {
        SubRec R;
        for (const uint32_t I : Sub.OpIdx) {
          R.Ops.push_back(B.Ops[I]);
          if (WithResults)
            R.Results.push_back(B.Results[I]);
        }
        return R;
      };
      if (!B.Partial) {
        if (B.Shards.size() != Plan.Subs.size()) {
          Fail("reply carries " + std::to_string(B.Shards.size()) +
               " shard annotations, recomputed plan has " +
               std::to_string(Plan.Subs.size()));
          return Stats;
        }
        for (size_t I = 0; I != Plan.Subs.size(); ++I) {
          const RoutePlan::Sub &Sub = Plan.Subs[I];
          const ShardCommit &Ann = B.Shards[I];
          if (Ann.Shard != Sub.Shard || Ann.NumOps != Sub.OpIdx.size() ||
              Ann.Shard >= Stats.Shards) {
            Fail("annotation " + std::to_string(I) + " names shard " +
                 std::to_string(Ann.Shard) + "/" +
                 std::to_string(Ann.NumOps) + " ops, plan says " +
                 std::to_string(Sub.Shard) + "/" +
                 std::to_string(Sub.OpIdx.size()));
            return Stats;
          }
          SubRec R = Slice(Sub, /*WithResults=*/true);
          R.Seq = Ann.CommitSeq;
          PerShard[Ann.Shard].push_back(std::move(R));
        }
      } else {
        // Partial commit: the annotations name a subset of the plan's
        // sub-batches (matched by shard — a plan holds at most one sub per
        // shard). Those ops executed; their results were never reported,
        // so they replay without comparison.
        for (const ShardCommit &Ann : B.Shards) {
          const RoutePlan::Sub *Match = nullptr;
          for (const RoutePlan::Sub &Sub : Plan.Subs)
            if (Sub.Shard == Ann.Shard) {
              Match = &Sub;
              break;
            }
          if (!Match || Ann.NumOps != Match->OpIdx.size() ||
              Ann.Shard >= Stats.Shards) {
            Fail("partial-commit annotation names shard " +
                 std::to_string(Ann.Shard) +
                 " with no matching sub in the recomputed plan");
            return Stats;
          }
          SubRec R = Slice(*Match, /*WithResults=*/false);
          R.Seq = Ann.CommitSeq;
          R.Partial = true;
          PerShard[Ann.Shard].push_back(std::move(R));
        }
      }
    }

    // Per-shard serial replay, then the lattice-merge check: the proxy's
    // merged State dump must equal the merge of the oracles' finals.
    std::vector<std::string> OracleTexts;
    for (uint32_t S = 0; S != Stats.Shards; ++S) {
      OracleReplayTarget Oracle(Config.UfElements);
      std::string Err;
      if (!PreSnaps[S].empty() && !Oracle.loadSnapshot(PreSnaps[S], &Err)) {
        Fail("shard " + std::to_string(S) + " pre-run snapshot: " + Err);
        return Stats;
      }
      std::sort(PerShard[S].begin(), PerShard[S].end(),
                [](const SubRec &A, const SubRec &B) { return A.Seq < B.Seq; });
      ReplayEngine Engine(Oracle, SeqPolicy::Ordered);
      for (const SubRec &R : PerShard[S]) {
        if (R.Partial) {
          if (R.Seq <= Engine.appliedSeq()) {
            Fail("shard " + std::to_string(S) +
                 " duplicate commit sequence " + std::to_string(R.Seq));
            return Stats;
          }
          std::vector<int64_t> Scratch;
          if (!Oracle.applyBatch(R.Ops, Scratch, &Err)) {
            Fail("shard " + std::to_string(S) + " partial replay at seq " +
                 std::to_string(R.Seq) + ": " + Err);
            return Stats;
          }
          Engine.seedApplied(R.Seq);
          continue;
        }
        WalRecord Rec;
        Rec.Seq = R.Seq;
        Rec.Ops = R.Ops;
        Rec.Results = R.Results;
        ReplayEngine::Outcome Outcome;
        if (!Engine.apply(Rec, Outcome, &Err)) {
          Fail("shard " + std::to_string(S) + ": " + Err);
          return Stats;
        }
      }
      // The shard's final abstract state, read back through the snapshot
      // relay and reduced via a scratch replica, must equal the oracle's.
      bool Ok = false;
      const std::string FinalSnap =
          fetchSnapState(Config.Host, Config.Port, S, Ok);
      OracleReplica View(Config.UfElements);
      if (!Ok || !View.loadSnapshot(FinalSnap)) {
        ++Stats.ProtocolErrors;
        Fail("final snapstate fetch failed for shard " + std::to_string(S));
        return Stats;
      }
      if (View.stateText() != Oracle.stateText()) {
        Fail("shard " + std::to_string(S) + " final state mismatch: shard {" +
             View.stateText() + "} oracle {" + Oracle.stateText() + "}");
        return Stats;
      }
      OracleTexts.push_back(Oracle.stateText());
    }

    Client C;
    Request Req;
    Req.ReqId = 1;
    Req.Type = MsgType::State;
    Response Resp;
    if (!C.connect(Config.Host, Config.Port) || !C.call(Req, Resp) ||
        Resp.St != Status::Ok) {
      ++Stats.ProtocolErrors;
      Fail("merged state fetch failed");
      return Stats;
    }
    std::string Expect, MergeErr;
    if (!mergeStateTexts(OracleTexts, Expect, &MergeErr)) {
      Fail("oracle-side merge failed: " + MergeErr);
      return Stats;
    }
    if (Resp.Text != Expect)
      Fail("merged state mismatch: proxy {" + Resp.Text + "} oracle merge {" +
           Expect + "}");
    return Stats;
  }

  // Serial replay oracle: committed batches in commit-sequence order must
  // reproduce every reply and the server's final state (Submitter.h's
  // commit-order witness). Assumes this loadgen was the only client. The
  // Ordered policy rejects duplicated sequences but tolerates holes — a
  // reply lost to a tolerated disconnect legitimately leaves one, and the
  // final-state comparison still catches a hole that mattered.
  Stats.VerifyRan = true;
  Stats.VerifyOk = true;
  OracleReplayTarget Oracle(Config.UfElements);
  ReplayEngine Engine(Oracle, SeqPolicy::Ordered);
  for (const CommittedBatch &B : Committed) {
    WalRecord Rec;
    Rec.Seq = B.CommitSeq;
    Rec.Ops = B.Ops;
    Rec.Results = B.Results;
    ReplayEngine::Outcome Outcome;
    std::string ReplayErr;
    if (!Engine.apply(Rec, Outcome, &ReplayErr)) {
      Stats.VerifyOk = false;
      Stats.VerifyDetail = ReplayErr;
      return Stats;
    }
  }
  Client C;
  Request Req;
  Req.ReqId = 1;
  Req.Type = MsgType::State;
  Response Resp;
  if (!C.connect(Config.Host, Config.Port) || !C.call(Req, Resp) ||
      Resp.St != Status::Ok) {
    ++Stats.ProtocolErrors;
    Stats.VerifyOk = false;
    Stats.VerifyDetail = "state fetch failed";
    return Stats;
  }
  if (Resp.Text != Oracle.stateText()) {
    Stats.VerifyOk = false;
    Stats.VerifyDetail = "final state mismatch: server {" + Resp.Text +
                         "} oracle {" + Oracle.stateText() + "}";
  }
  return Stats;
}

std::string svc::fetchMetricsText(const std::string &Host, uint16_t Port) {
  Client C;
  Request Req;
  Req.ReqId = 2;
  Req.Type = MsgType::Metrics;
  Response Resp;
  if (!C.connect(Host, Port) || !C.call(Req, Resp) || Resp.St != Status::Ok)
    return "";
  return Resp.Text;
}

std::string svc::fetchStatsText(const std::string &Host, uint16_t Port) {
  Client C;
  Request Req;
  Req.ReqId = 3;
  Req.Type = MsgType::Stats;
  Response Resp;
  if (!C.connect(Host, Port) || !C.call(Req, Resp) || Resp.St != Status::Ok)
    return "";
  return Resp.Text;
}

bool svc::waitReady(const std::string &Host, uint16_t Port,
                    double TimeoutSec) {
  Timer T;
  for (;;) {
    {
      Client C;
      Request Req;
      Req.ReqId = 4;
      Req.Type = MsgType::Ping;
      Response Resp;
      if (C.connect(Host, Port) && C.call(Req, Resp) &&
          Resp.St == Status::Ok)
        return true;
    }
    if (T.seconds() >= TimeoutSec)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

//===----------------------------------------------------------------------===//
// Post-crash recovery audit
//===----------------------------------------------------------------------===//

namespace {

/// One acknowledged batch as read back from a loadgen acked log.
struct AckedBatch {
  uint64_t Seq = 0;
  std::vector<Op> Ops;
  std::vector<int64_t> Results;
};

bool readAckedLog(const std::string &Path, std::vector<AckedBatch> &Out,
                  std::string &Detail) {
  std::ifstream In(Path);
  if (!In) {
    Detail = "cannot open acked log '" + Path + "'";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream Ls(Line);
    AckedBatch B;
    size_t NumOps = 0;
    if (!(Ls >> B.Seq >> NumOps) || NumOps == 0 || NumOps > MaxBatchOps) {
      Detail = "acked log line " + std::to_string(LineNo) + ": bad header";
      return false;
    }
    B.Ops.resize(NumOps);
    for (Op &O : B.Ops) {
      unsigned Obj = 0, Method = 0;
      if (!(Ls >> Obj >> Method >> O.A >> O.B)) {
        Detail = "acked log line " + std::to_string(LineNo) + ": bad op";
        return false;
      }
      O.Obj = static_cast<uint8_t>(Obj);
      O.Method = static_cast<uint8_t>(Method);
    }
    B.Results.resize(NumOps);
    for (int64_t &V : B.Results)
      if (!(Ls >> V)) {
        Detail = "acked log line " + std::to_string(LineNo) + ": bad result";
        return false;
      }
    Out.push_back(std::move(B));
  }
  return true;
}

bool sameOp(const Op &A, const Op &B) {
  return A.Obj == B.Obj && A.Method == B.Method && A.A == B.A && A.B == B.B;
}

} // namespace

RecoveryCheckResult svc::runRecoveryCheck(const RecoveryCheckConfig &Config) {
  RecoveryCheckResult R;
  auto Fail = [&R](std::string D) {
    R.Detail = std::move(D);
    return R;
  };

  // 1. The restarted server must be durable and report its recovery
  //    watermark.
  const std::string Stats = fetchStatsText(Config.Host, Config.Port);
  if (Stats.empty())
    return Fail("stats fetch failed (server not reachable?)");
  uint64_t DurableMode = 0;
  if (!statValue(Stats, "durable", DurableMode) || DurableMode != 1)
    return Fail("server is not running durable");
  if (!statValue(Stats, "wal_recovered_seq", R.RecoveredSeq))
    return Fail("stats missing wal_recovered_seq");

  // 2. The acked log: what clients were promised.
  std::vector<AckedBatch> Acked;
  std::string Detail;
  if (!readAckedLog(Config.AckedLogPath, Acked, Detail))
    return Fail(std::move(Detail));
  R.AckedBatches = Acked.size();
  std::sort(Acked.begin(), Acked.end(),
            [](const AckedBatch &A, const AckedBatch &B) {
              return A.Seq < B.Seq;
            });
  for (size_t I = 1; I < Acked.size(); ++I)
    if (Acked[I].Seq == Acked[I - 1].Seq)
      return Fail("duplicate acked sequence " + std::to_string(Acked[I].Seq));

  // 3. The headline property: recovery reached every acknowledged batch.
  if (!Acked.empty() && Acked.back().Seq > R.RecoveredSeq)
    return Fail("acked seq " + std::to_string(Acked.back().Seq) +
                " beyond recovered watermark " +
                std::to_string(R.RecoveredSeq) + ": acknowledged data lost");

  // 4. Read the durable artifacts directly (the audit does not trust the
  //    server's own word for what is on disk). Never Repair here: the
  //    live server owns these files.
  RecoverySource Source(Config.WalDir);
  std::string Err;
  if (!Source.load(/*Repair=*/false, &Err))
    return Fail("wal scan: " + Err);
  const WalScan &Scan = Source.scan();
  R.SnapshotSeq = Source.hasSnapshot() ? Source.snapshot().Seq : 0;
  if (Scan.Torn)
    return Fail("torn wal tail survived recovery (repair did not run?)");
  if (Scan.Gap)
    return Fail("wal sequence gap at " + std::to_string(Scan.GapAt) +
                ": acknowledged history missing from disk");
  R.WalRecords = Scan.Records.size();

  // 5. Every acked batch above the snapshot watermark must sit in the WAL
  //    with identical ops and results; at or below it, the snapshot
  //    subsumes it.
  std::unordered_map<uint64_t, const WalRecord *> BySeq;
  BySeq.reserve(Scan.Records.size());
  for (const WalRecord &Rec : Scan.Records)
    BySeq.emplace(Rec.Seq, &Rec);
  for (const AckedBatch &B : Acked) {
    if (B.Seq <= R.SnapshotSeq)
      continue;
    const auto It = BySeq.find(B.Seq);
    if (It == BySeq.end())
      return Fail("acked seq " + std::to_string(B.Seq) +
                  " above snapshot watermark " +
                  std::to_string(R.SnapshotSeq) + " missing from wal");
    const WalRecord &Rec = *It->second;
    if (Rec.Ops.size() != B.Ops.size() ||
        Rec.Results.size() != B.Results.size())
      return Fail("acked seq " + std::to_string(B.Seq) +
                  ": wal record shape differs");
    for (size_t I = 0; I != B.Ops.size(); ++I)
      if (!sameOp(Rec.Ops[I], B.Ops[I]) || Rec.Results[I] != B.Results[I])
        return Fail("acked seq " + std::to_string(B.Seq) + " op " +
                    std::to_string(I) + ": wal content differs");
  }

  // 6. Serial witness: snapshot + WAL replayed through the one
  //    ReplayEngine into the sequential oracle must reproduce every logged
  //    result, each acknowledged sequence exactly once, contiguously
  //    (Strict)...
  OracleReplayTarget Oracle(Config.UfElements);
  ReplayEngine Engine(Oracle, SeqPolicy::Strict);
  std::string ReplayErr;
  if (!Source.replayInto(Engine, &ReplayErr))
    return Fail("wal replay: " + ReplayErr);

  // 7. ...and the server's live state: recovery really applied the log.
  Client C;
  Request Req;
  Req.ReqId = 5;
  Req.Type = MsgType::State;
  Response Resp;
  if (!C.connect(Config.Host, Config.Port) || !C.call(Req, Resp) ||
      Resp.St != Status::Ok)
    return Fail("state fetch failed");
  if (Resp.Text != Oracle.stateText())
    return Fail("recovered state mismatch: server {" + Resp.Text +
                "} oracle {" + Oracle.stateText() + "}");

  // 8. The artifacts and the server agree on where the log ends.
  if (Source.watermark() != R.RecoveredSeq)
    return Fail("watermark mismatch: disk max(snapshot " +
                std::to_string(R.SnapshotSeq) + ", wal " +
                std::to_string(Scan.LastSeq) + ") != recovered " +
                std::to_string(R.RecoveredSeq));

  R.Ok = true;
  return R;
}

//===----------------------------------------------------------------------===//
// Follower replication audit
//===----------------------------------------------------------------------===//

FollowerCheckResult svc::runFollowerCheck(const FollowerCheckConfig &Config) {
  FollowerCheckResult R;
  auto Fail = [&R](std::string D) {
    R.Detail = std::move(D);
    return R;
  };
  auto FetchState = [](const std::string &Host, uint16_t Port,
                       std::string &Out) {
    Client C;
    Request Req;
    Req.ReqId = 6;
    Req.Type = MsgType::State;
    Response Resp;
    if (!C.connect(Host, Port) || !C.call(Req, Resp) ||
        Resp.St != Status::Ok)
      return false;
    Out = Resp.Text;
    return true;
  };

  // 1. The leader must serve durably (no WAL means nothing was shipped)
  //    and report the durable watermark the follower is held to.
  const std::string LeaderStats =
      fetchStatsText(Config.LeaderHost, Config.LeaderPort);
  if (LeaderStats.empty())
    return Fail("leader stats fetch failed (server not reachable?)");
  uint64_t DurableMode = 0;
  if (!statValue(LeaderStats, "durable", DurableMode) || DurableMode != 1)
    return Fail("leader is not running durable");
  if (LeaderStats.find("role=leader") == std::string::npos)
    return Fail("leader endpoint is not serving as a leader");
  if (!statValue(LeaderStats, "wal_durable_seq", R.LeaderDurableSeq))
    return Fail("leader stats missing wal_durable_seq");

  // 2. The follower must catch up to that watermark within the deadline.
  Timer T;
  for (;;) {
    const std::string FollowerStats =
        fetchStatsText(Config.FollowerHost, Config.FollowerPort);
    if (!FollowerStats.empty()) {
      if (FollowerStats.find("role=follower") == std::string::npos)
        return Fail("follower endpoint is not serving as a follower");
      uint64_t Failed = 0;
      if (statValue(FollowerStats, "repl_failed", Failed) && Failed != 0)
        return Fail("follower reports replication failed");
      uint64_t Applied = 0;
      if (statValue(FollowerStats, "repl_applied_seq", Applied) &&
          Applied >= R.LeaderDurableSeq) {
        R.FollowerAppliedSeq = Applied;
        break;
      }
      R.FollowerAppliedSeq = Applied;
    }
    if (T.seconds() >= Config.CatchUpTimeoutSec)
      return Fail("follower stuck at applied seq " +
                  std::to_string(R.FollowerAppliedSeq) +
                  " behind leader durable seq " +
                  std::to_string(R.LeaderDurableSeq));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // 3. Monotonic reads: on one connection the reply stamps (the
  //    follower's applied watermark) must never go backwards, and never
  //    sit below the watermark it already reported.
  {
    Client C;
    if (!C.connect(Config.FollowerHost, Config.FollowerPort))
      return Fail("follower connect failed");
    uint64_t Last = 0;
    for (int I = 0; I != 20; ++I) {
      Request Req;
      Req.ReqId = 100 + static_cast<uint64_t>(I);
      Req.Type = MsgType::Batch;
      Op O;
      O.Obj = static_cast<uint8_t>(ObjectId::Acc);
      O.Method = AccRead;
      Req.Ops.push_back(O);
      Response Resp;
      if (!C.call(Req, Resp) || Resp.St != Status::Ok)
        return Fail("follower read " + std::to_string(I) + " failed");
      if (Resp.CommitSeq < Last)
        return Fail("monotonic reads violated: stamp " +
                    std::to_string(Resp.CommitSeq) + " after " +
                    std::to_string(Last));
      Last = Resp.CommitSeq;
    }

    // 4. Mutations must be refused with a Redirect naming the leader.
    Request Mut;
    Mut.ReqId = 200;
    Mut.Type = MsgType::Batch;
    Op O;
    O.Obj = static_cast<uint8_t>(ObjectId::Set);
    O.Method = SetAdd;
    O.A = 1;
    Mut.Ops.push_back(O);
    Response Resp;
    if (!C.call(Mut, Resp))
      return Fail("follower mutation probe failed");
    if (Resp.St != Status::Redirect)
      return Fail("follower accepted (or errored) a mutation instead of "
                  "redirecting it");
    if (Resp.Text.find("leader=") == std::string::npos)
      return Fail("redirect reply does not name the leader: '" + Resp.Text +
                  "'");
  }

  // 5. With both quiesced at the same watermark, the follower's state
  //    must equal the leader's.
  std::string LeaderState, FollowerState;
  if (!FetchState(Config.LeaderHost, Config.LeaderPort, LeaderState))
    return Fail("leader state fetch failed");
  if (!FetchState(Config.FollowerHost, Config.FollowerPort, FollowerState))
    return Fail("follower state fetch failed");
  if (LeaderState != FollowerState)
    return Fail("state mismatch: leader {" + LeaderState + "} follower {" +
                FollowerState + "}");

  // 6. Independent witness: the leader and follower could agree on a
  //    wrong answer, so optionally replay the leader's durable artifacts
  //    through the oracle and hold the follower to that too.
  if (!Config.LeaderWalDir.empty()) {
    RecoverySource Source(Config.LeaderWalDir);
    std::string Err;
    // Never Repair: the live leader owns these files.
    if (!Source.load(/*Repair=*/false, &Err))
      return Fail("leader wal scan: " + Err);
    if (Source.scan().Torn)
      return Fail("leader wal tail is torn while quiesced");
    if (Source.scan().Gap)
      return Fail("leader wal sequence gap at " +
                  std::to_string(Source.scan().GapAt));
    OracleReplayTarget Oracle(Config.UfElements);
    ReplayEngine Engine(Oracle, SeqPolicy::Strict);
    std::string ReplayErr;
    if (!Source.replayInto(Engine, &ReplayErr))
      return Fail("leader wal replay: " + ReplayErr);
    if (Oracle.stateText() != FollowerState)
      return Fail("oracle mismatch: leader wal replays to {" +
                  Oracle.stateText() + "} but the follower holds {" +
                  FollowerState + "}");
  }

  R.Ok = true;
  return R;
}
