//===- svc/Shard.cpp - Consistent-hash ring + spec-driven routing ----------===//

#include "svc/Shard.h"

#include "adt/Accumulator.h"
#include "adt/BoostedUnionFind.h"
#include "adt/SetSpecs.h"
#include "adt/UnionFind.h"
#include "core/Spec.h"
#include "svc/Objects.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

using namespace comlat;
using namespace comlat::svc;

//===----------------------------------------------------------------------===//
// HashRing
//===----------------------------------------------------------------------===//

HashRing::HashRing(unsigned NumShards, unsigned VNodes, uint64_t Seed)
    : NumShards(NumShards ? NumShards : 1), VNodes(VNodes ? VNodes : 1),
      Seed(Seed) {
  Points.reserve(static_cast<size_t>(this->NumShards) * this->VNodes);
  for (unsigned S = 0; S != this->NumShards; ++S)
    for (unsigned V = 0; V != this->VNodes; ++V) {
      const uint64_t Slot = (static_cast<uint64_t>(S) << 32) | V;
      Points.emplace_back(shardMix(Seed ^ shardMix(Slot)), S);
    }
  std::sort(Points.begin(), Points.end());
}

unsigned HashRing::shardForKey(uint64_t Key) const {
  const uint64_t H = shardMix(Key ^ Seed);
  auto It = std::upper_bound(
      Points.begin(), Points.end(), std::make_pair(H, ~0u),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  if (It == Points.end())
    It = Points.begin(); // wrap: first point clockwise of the top
  return It->second;
}

//===----------------------------------------------------------------------===//
// ShardRouter
//===----------------------------------------------------------------------===//

const char *svc::routeKindName(RouteKind K) {
  switch (K) {
  case RouteKind::Keyed:
    return "keyed";
  case RouteKind::Pinned:
    return "pinned";
  case RouteKind::Anywhere:
    return "anywhere";
  }
  return "?";
}

namespace {

/// Derives one method's route from its spec classification (the decision
/// procedure the file comment describes). \p M is a method of \p Spec.
MethodRoute deriveRoute(const CommSpec &Spec, MethodId M) {
  const MethodClass &MC = Spec.classifyMethod(M);
  if (MC.Privatizable)
    return {RouteKind::Anywhere, 0};
  // Keyed iff every pair that is not trivially ALWAYS is key-separable,
  // state-free, and names the same argument of M as the key. A method
  // whose every pair is ALWAYS but which returns a value (so it is not
  // privatizable) stays Pinned: its result observes one replica.
  bool SawKey = false;
  unsigned Key = 0;
  for (MethodId M2 = 0, E = Spec.sig().numMethods(); M2 != E; ++M2) {
    const PairClass &PC = Spec.classifyPair(M, M2);
    if (PC.always())
      continue;
    if (PC.never() || !PC.Separable || !PC.StateFree)
      return {RouteKind::Pinned, 0};
    if (SawKey && PC.KeyArg1 != Key)
      return {RouteKind::Pinned, 0};
    Key = PC.KeyArg1;
    SawKey = true;
  }
  if (!SawKey)
    return {RouteKind::Pinned, 0};
  return {RouteKind::Keyed, Key};
}

/// Spreads a (structure, key) pair over the ring's key space.
uint64_t keyPoint(uint8_t Obj, int64_t Key) {
  return shardMix((static_cast<uint64_t>(Obj) + 1) * 0x100000001B3ull ^
                  static_cast<uint64_t>(Key));
}

/// Content hash of one op, for picking a primary shard when a batch is
/// all Anywhere ops and no key or pin decides.
uint64_t opPoint(const Op &O) {
  const uint64_t Head = (static_cast<uint64_t>(O.Obj) << 8) | O.Method;
  return shardMix(Head ^ shardMix(static_cast<uint64_t>(O.A)) ^
                  (shardMix(static_cast<uint64_t>(O.B)) << 1));
}

} // namespace

ShardRouter::ShardRouter(const HashRing &Ring) : Ring(Ring) {
  const SetSig &SS = setSig();
  const CommSpec &SetSpec = preciseSetSpec();
  Routes[static_cast<unsigned>(ObjectId::Set)][SetAdd] =
      deriveRoute(SetSpec, SS.Add);
  Routes[static_cast<unsigned>(ObjectId::Set)][SetRemove] =
      deriveRoute(SetSpec, SS.Remove);
  Routes[static_cast<unsigned>(ObjectId::Set)][SetContains] =
      deriveRoute(SetSpec, SS.Contains);

  const AccumulatorSig &AS = accumulatorSig();
  const CommSpec &AccSpec = accumulatorSpec();
  Routes[static_cast<unsigned>(ObjectId::Acc)][AccIncrement] =
      deriveRoute(AccSpec, AS.Increment);
  Routes[static_cast<unsigned>(ObjectId::Acc)][AccRead] =
      deriveRoute(AccSpec, AS.Read);

  const UfSig &US = ufSig();
  const CommSpec &UfSp = ufSpec();
  Routes[static_cast<unsigned>(ObjectId::Uf)][UfFind] =
      deriveRoute(UfSp, US.Find);
  Routes[static_cast<unsigned>(ObjectId::Uf)][UfUnion] =
      deriveRoute(UfSp, US.Union);

  for (unsigned Obj = 0; Obj != 3; ++Obj)
    Owners[Obj] = Ring.shardForKey(shardMix(0x51ED0000ull + Obj));
}

unsigned ShardRouter::shardForOp(const Op &O) const {
  const MethodRoute &R = route(static_cast<ObjectId>(O.Obj), O.Method);
  switch (R.Kind) {
  case RouteKind::Keyed:
    return Ring.shardForKey(keyPoint(O.Obj, R.KeyArg == 0 ? O.A : O.B));
  case RouteKind::Pinned:
    return Owners[O.Obj];
  case RouteKind::Anywhere:
    return AnyShard;
  }
  return Owners[O.Obj];
}

RoutePlan ShardRouter::plan(const std::vector<Op> &Ops) const {
  std::vector<unsigned> Shard(Ops.size(), AnyShard);
  unsigned Primary = AnyShard;
  for (size_t I = 0; I != Ops.size(); ++I) {
    Shard[I] = shardForOp(Ops[I]);
    if (Primary == AnyShard && Shard[I] != AnyShard)
      Primary = Shard[I];
  }
  if (Primary == AnyShard && !Ops.empty())
    Primary = Ring.shardForKey(opPoint(Ops[0]));

  RoutePlan Plan;
  std::map<unsigned, size_t> SubOf; // shard -> index into Plan.Subs
  for (size_t I = 0; I != Ops.size(); ++I) {
    const unsigned S = Shard[I] == AnyShard ? Primary : Shard[I];
    auto It = SubOf.find(S);
    if (It == SubOf.end()) {
      It = SubOf.emplace(S, Plan.Subs.size()).first;
      Plan.Subs.push_back({S, {}});
    }
    Plan.Subs[It->second].OpIdx.push_back(static_cast<uint32_t>(I));
  }
  std::sort(Plan.Subs.begin(), Plan.Subs.end(),
            [](const RoutePlan::Sub &A, const RoutePlan::Sub &B) {
              return A.Shard < B.Shard;
            });
  return Plan;
}

//===----------------------------------------------------------------------===//
// Lattice merges
//===----------------------------------------------------------------------===//

namespace {

/// Value of the `<Key>=` line in a stateText dump, or false when absent.
bool stateField(const std::string &Text, const char *Key, std::string &Out) {
  const std::string Needle = std::string(Key) + "=";
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    if (Text.compare(Pos, Needle.size(), Needle) == 0) {
      Out = Text.substr(Pos + Needle.size(), Eol - Pos - Needle.size());
      return true;
    }
    Pos = Eol + 1;
  }
  return false;
}

bool fail(std::string *Err, const std::string &Why) {
  if (Err)
    *Err = Why;
  return false;
}

/// Parses a trailing-comma i64 list ("3,17," or "").
bool parseKeyList(const std::string &Csv, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (Pos < Csv.size()) {
    const size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      return false;
    try {
      Out.push_back(std::stoll(Csv.substr(Pos, Comma - Pos)));
    } catch (...) {
      return false;
    }
    Pos = Comma + 1;
  }
  return true;
}

/// Parses a UnionFind::signature() dump ("smallest:rep," per element) into
/// the per-element smallest member of its class.
bool parseUfSignature(const std::string &Sig, std::vector<int64_t> &Smallest) {
  size_t Pos = 0;
  while (Pos < Sig.size()) {
    const size_t Colon = Sig.find(':', Pos);
    const size_t Comma = Sig.find(',', Pos);
    if (Colon == std::string::npos || Comma == std::string::npos ||
        Colon > Comma)
      return false;
    try {
      Smallest.push_back(std::stoll(Sig.substr(Pos, Colon - Pos)));
    } catch (...) {
      return false;
    }
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

bool svc::mergeStateTexts(const std::vector<std::string> &Texts,
                          std::string &Out, std::string *Err) {
  if (Texts.empty())
    return fail(Err, "no shard states to merge");

  std::set<int64_t> Keys;
  int64_t Sum = 0;
  std::vector<std::vector<int64_t>> UfViews;
  size_t UfElems = 0;
  for (size_t I = 0; I != Texts.size(); ++I) {
    std::string SetCsv, AccStr, UfSig;
    if (!stateField(Texts[I], "set", SetCsv) ||
        !stateField(Texts[I], "acc", AccStr) ||
        !stateField(Texts[I], "uf", UfSig))
      return fail(Err, "shard " + std::to_string(I) +
                           ": not a stateText dump");
    std::vector<int64_t> ShardKeys;
    if (!parseKeyList(SetCsv, ShardKeys))
      return fail(Err, "shard " + std::to_string(I) + ": bad set signature");
    Keys.insert(ShardKeys.begin(), ShardKeys.end());
    try {
      Sum += std::stoll(AccStr);
    } catch (...) {
      return fail(Err, "shard " + std::to_string(I) + ": bad acc value");
    }
    UfViews.emplace_back();
    if (!parseUfSignature(UfSig, UfViews.back()))
      return fail(Err, "shard " + std::to_string(I) + ": bad uf signature");
    if (I == 0)
      UfElems = UfViews.back().size();
    else if (UfViews.back().size() != UfElems)
      return fail(Err, "shard " + std::to_string(I) +
                           ": uf element count disagrees");
  }

  // Partition join: union each shard's observed classes into one fresh
  // forest. An element's signature entry names the smallest member of its
  // class, so uniting each element with that member reconstructs the class.
  UnionFind Merged(UfElems);
  for (const std::vector<int64_t> &View : UfViews)
    for (size_t E = 0; E != View.size(); ++E)
      if (View[E] != static_cast<int64_t>(E)) {
        if (View[E] < 0 || View[E] >= static_cast<int64_t>(UfElems))
          return fail(Err, "uf signature names element out of range");
        bool Changed = false;
        Merged.unite(static_cast<int64_t>(E), View[E], /*Probe=*/nullptr,
                     /*Actions=*/nullptr, Changed);
      }

  std::string SetSig;
  for (const int64_t K : Keys) {
    SetSig += std::to_string(K);
    SetSig += ',';
  }
  Out = renderStateText(SetSig, Sum, Merged.signature());
  return true;
}

std::string svc::mergeMetricsTexts(const std::vector<std::string> &Texts) {
  // Sum samples by name+labels; comments and unparsable lines pass through
  // once, in first-seen order.
  std::vector<std::string> Order;
  std::map<std::string, double> Samples;
  std::set<std::string> SeenPass;
  for (const std::string &Text : Texts) {
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      if (Eol == std::string::npos)
        Eol = Text.size();
      const std::string Line = Text.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      if (Line.empty())
        continue;
      const size_t Space = Line.rfind(' ');
      char *End = nullptr;
      const double V = Space == std::string::npos || Space == 0 ||
                               Line[0] == '#'
                           ? 0
                           : std::strtod(Line.c_str() + Space + 1, &End);
      const bool IsSample =
          End && End != Line.c_str() + Space + 1 && *End == '\0';
      if (!IsSample) {
        if (SeenPass.insert(Line).second)
          Order.push_back(Line);
        continue;
      }
      const std::string Key = Line.substr(0, Space);
      const auto It = Samples.find(Key);
      if (It == Samples.end()) {
        Samples[Key] = V;
        Order.push_back(Key);
      } else {
        It->second += V;
      }
    }
  }
  std::string Out;
  for (const std::string &Line : Order) {
    const auto It = Samples.find(Line);
    if (It == Samples.end()) {
      Out += Line;
    } else {
      Out += It->first;
      Out += ' ';
      const double V = It->second;
      if (V == std::floor(V) && std::fabs(V) < 9.2e18) {
        Out += std::to_string(static_cast<long long>(V));
      } else {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%g", V);
        Out += Buf;
      }
    }
    Out += '\n';
  }
  return Out;
}
