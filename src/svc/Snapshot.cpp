//===- svc/Snapshot.cpp - Atomic ADT state snapshots -----------------------===//

#include "svc/Snapshot.h"

#include "support/Crc32.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// File layout: magic | u32 payload_len | payload | u32 crc32c(payload),
/// payload := u64 seq | state bytes.
constexpr char SnapMagic[8] = {'c', 'o', 'm', 'l', 's', 'n', 'a', 'p'};

void putU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(const std::string &Buf, size_t Pos) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
  return V;
}

uint64_t getU64(const std::string &Buf, size_t Pos) {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos + I])) << (8 * I);
  return V;
}

std::string snapshotName(uint64_t Seq) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "snap-%020llu.snap",
                static_cast<unsigned long long>(Seq));
  return Buf;
}

bool isSnapshotName(const std::string &Name) {
  return Name.size() > 10 && Name.compare(0, 5, "snap-") == 0 &&
         Name.compare(Name.size() - 5, 5, ".snap") == 0;
}

/// Snapshot file names under \p Dir, sorted oldest-first (zero-padded
/// sequence numbers make lexicographic order sequence order).
bool listSnapshots(const std::string &Dir, std::vector<std::string> &Names,
                   std::vector<std::string> *Tmps, std::string *Err) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    if (Err)
      *Err = "opendir " + Dir + ": " + std::strerror(errno);
    return false;
  }
  while (struct dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (isSnapshotName(Name))
      Names.push_back(Name);
    else if (Tmps && Name.size() > 4 &&
             Name.compare(0, 5, "snap-") == 0 &&
             Name.compare(Name.size() - 4, 4, ".tmp") == 0)
      Tmps->push_back(Name);
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return true;
}

bool syncDir(const std::string &Dir, std::string *Err) {
  const int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0) {
    if (Err)
      *Err = "open directory " + Dir + ": " + std::strerror(errno);
    return false;
  }
  const bool Ok = ::fdatasync(Fd) == 0;
  if (!Ok && Err)
    *Err = "fsync directory " + Dir + ": " + std::strerror(errno);
  ::close(Fd);
  return Ok;
}

} // namespace

bool svc::writeSnapshot(const std::string &Dir, const SnapshotData &Snap,
                        std::string *Err) {
  std::string Bytes;
  Bytes.reserve(sizeof(SnapMagic) + 16 + Snap.State.size() + 4);
  Bytes.append(SnapMagic, sizeof(SnapMagic));
  std::string Payload;
  Payload.reserve(8 + Snap.State.size());
  putU64(Payload, Snap.Seq);
  Payload += Snap.State;
  putU32(Bytes, static_cast<uint32_t>(Payload.size()));
  Bytes += Payload;
  putU32(Bytes, crc32c(Payload));

  const std::string Final = Dir + "/" + snapshotName(Snap.Seq);
  const std::string Tmp = Final + ".tmp";
  const int Fd =
      ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (Err)
      *Err = "create " + Tmp + ": " + std::strerror(errno);
    return false;
  }
  size_t Off = 0;
  while (Off != Bytes.size()) {
    const ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = "write " + Tmp + ": " + std::strerror(errno);
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  if (::fdatasync(Fd) != 0) {
    if (Err)
      *Err = "fsync " + Tmp + ": " + std::strerror(errno);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    if (Err)
      *Err = "rename " + Tmp + ": " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  // The rename itself must be durable before the WAL may be truncated.
  return syncDir(Dir, Err);
}

bool svc::loadNewestSnapshot(const std::string &Dir, SnapshotData &Out,
                             std::string *Err) {
  std::vector<std::string> Names;
  if (!listSnapshots(Dir, Names, nullptr, Err))
    return false;
  for (auto It = Names.rbegin(); It != Names.rend(); ++It) {
    const std::string Path = Dir + "/" + *It;
    const int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (Fd < 0)
      continue;
    std::string Bytes;
    char Buf[64 * 1024];
    bool ReadOk = true;
    for (;;) {
      const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N > 0) {
        Bytes.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      ReadOk = N == 0;
      break;
    }
    ::close(Fd);
    if (!ReadOk)
      continue;
    const size_t H = sizeof(SnapMagic) + 4;
    if (Bytes.size() < H + 8 + 4 ||
        std::memcmp(Bytes.data(), SnapMagic, sizeof(SnapMagic)) != 0)
      continue;
    const uint32_t Len = getU32(Bytes, sizeof(SnapMagic));
    if (Len < 8 || Bytes.size() != H + Len + 4)
      continue;
    const std::string Payload = Bytes.substr(H, Len);
    if (getU32(Bytes, H + Len) != crc32c(Payload))
      continue;
    Out.Seq = getU64(Payload, 0);
    Out.State = Payload.substr(8);
    return true;
  }
  return false;
}

uint64_t svc::oldestSnapshotSeq(const std::string &Dir) {
  std::vector<std::string> Names;
  if (!listSnapshots(Dir, Names, nullptr, nullptr) || Names.empty())
    return 0;
  return std::strtoull(Names.front().c_str() + 5, nullptr, 10);
}

size_t svc::pruneSnapshots(const std::string &Dir, size_t Keep) {
  std::vector<std::string> Names, Tmps;
  if (!listSnapshots(Dir, Names, &Tmps, nullptr))
    return 0;
  size_t Removed = 0;
  const size_t Drop = Names.size() > Keep ? Names.size() - Keep : 0;
  for (size_t I = 0; I != Drop; ++I)
    if (::unlink((Dir + "/" + Names[I]).c_str()) == 0)
      ++Removed;
  for (const std::string &T : Tmps)
    if (::unlink((Dir + "/" + T).c_str()) == 0)
      ++Removed;
  if (Removed)
    syncDir(Dir, nullptr);
  return Removed;
}
