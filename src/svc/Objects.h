//===- svc/Objects.h - Hosted boosted structures ----------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structures comlat-serve exposes over the wire and the sequential
/// replica the verification oracle replays against.
///
/// ObjectHost owns one instance of each addressable structure, all under
/// their commutativity-lattice conflict detectors: the forward-gatekept
/// set (precise spec, striped admission), the abstract-locked accumulator,
/// and the general-gatekept union-find. applyOp() maps one protocol Op to
/// one boosted call inside the caller's transaction.
///
/// OracleReplica applies the same Op vocabulary to plain sequential
/// structures with identical abstract semantics. Replaying a run's
/// committed batches in commit-sequence order through a replica must
/// reproduce every reply's results and the server's final stateText() —
/// the loopback test's serial-witness check (SerialChecker's oracle
/// specialized to the commit order the Submitter already witnessed).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_OBJECTS_H
#define COMLAT_SVC_OBJECTS_H

#include "adt/Accumulator.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "adt/IntHashSet.h"
#include "adt/UnionFind.h"
#include "svc/Protocol.h"

#include <memory>

namespace comlat {
namespace svc {

/// Shared renderers for the abstract-state and snapshot dumps. ObjectHost
/// and OracleReplica both format through these, so the two can never
/// drift: a replayed oracle's stateText() is byte-comparable with the
/// server's by construction.
std::string renderStateText(const std::string &SetSig, int64_t AccValue,
                            const std::string &UfSig);
std::string renderSnapshotText(size_t UfElems, const std::string &SetSig,
                               int64_t AccValue, const std::string &UfState);

/// Parsed fields of a renderSnapshotText() dump.
struct SnapshotFields {
  size_t UfElems = 0;
  std::vector<int64_t> SetKeys;
  int64_t AccValue = 0;
  std::string UfState;
};

/// Parses a snapshot dump. Returns false and sets \p Err on malformed
/// input; element-count agreement is the caller's check.
bool parseSnapshotText(const std::string &Text, SnapshotFields &Out,
                       std::string *Err = nullptr);

/// The server-side structures, one instance each, behind their detectors.
/// Thread-safe through the detectors: apply from any worker inside a
/// transaction; stateText() only when quiesced.
class ObjectHost {
public:
  /// With \p PrivatizeAcc the accumulator runs behind the privatized
  /// gatekeeper (increments divert to per-worker replicas; reads merge)
  /// instead of the abstract-lock scheme.
  explicit ObjectHost(size_t UfElements, bool PrivatizeAcc = false);

  size_t ufElements() const { return UfElems; }

  /// Whether the accumulator runs on the privatized path.
  bool privatizedAcc() const { return PrivAcc; }

  /// Executes \p O (which must satisfy validOp) inside \p Tx. Returns
  /// false when a detector vetoed — Tx is failed and the caller must stop
  /// the batch. \p Result receives the operation's value: membership /
  /// changed bits as 0 or 1, the accumulator sum, or the representative.
  bool applyOp(Transaction &Tx, const Op &O, int64_t &Result);

  /// Canonical dump of all abstract states, one `name=value` line per
  /// structure. Quiesced callers only (diagnostic / oracle endpoint).
  std::string stateText() const;

  /// Durability-snapshot dump: stateText() plus the exact union-find
  /// concrete state (`ufstate=` line, parent:rank pairs). signature()
  /// alone loses ranks, which decide future union winners — a restored
  /// forest must keep behaving identically, so snapshots carry the raw
  /// representation. Quiesced callers only.
  std::string snapshotText() const;

  /// Restores a snapshotText() dump into this (fresh, quiesced) host by
  /// replaying set membership and the accumulator sum through the gated
  /// path and installing the union-find state directly. Returns false and
  /// sets \p Err on a malformed dump or a ufelems mismatch.
  bool loadSnapshot(const std::string &Text, std::string *Err = nullptr);

private:
  size_t UfElems;
  bool PrivAcc;
  std::unique_ptr<TxSet> Set;
  std::unique_ptr<TxAccumulator> Acc;
  std::unique_ptr<TxUnionFind> Uf;
};

/// Sequential replica of the hosted structures for oracle replay.
class OracleReplica {
public:
  explicit OracleReplica(size_t UfElements)
      : Uf(UfElements), UfElems(UfElements) {}

  /// Applies \p O sequentially and returns its result value (same
  /// encoding as ObjectHost::applyOp).
  int64_t applyOp(const Op &O);

  /// Same rendering as ObjectHost::stateText().
  std::string stateText() const;

  /// Restores an ObjectHost::snapshotText() dump (same format). Returns
  /// false on malformed input or a ufelems mismatch.
  bool loadSnapshot(const std::string &Text);

private:
  IntHashSet Set;
  int64_t Sum = 0;
  UnionFind Uf;
  size_t UfElems;
};

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_OBJECTS_H
