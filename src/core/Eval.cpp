//===- core/Eval.cpp - Evaluating commutativity conditions ----------------===//

#include "core/Eval.h"

using namespace comlat;

ApplyResolver::~ApplyResolver() = default;

static const Invocation &invocationFor(EvalContext &Ctx, InvIndex Inv) {
  const Invocation *I =
      Inv == InvIndex::Inv1 ? Ctx.Inv1 : Ctx.Inv2;
  assert(I && "evaluation context missing an invocation");
  return *I;
}

Value comlat::evalArithOp(ArithOp Op, const Value &L, const Value &R) {
  assert(L.isNumber() && R.isNumber() && "arithmetic on non-numeric values");
  if (L.isInt() && R.isInt()) {
    const int64_t A = L.asInt(), B = R.asInt();
    switch (Op) {
    case ArithOp::Add:
      return Value::integer(A + B);
    case ArithOp::Sub:
      return Value::integer(A - B);
    case ArithOp::Mul:
      return Value::integer(A * B);
    case ArithOp::Div:
      assert(B != 0 && "division by zero in condition");
      return Value::integer(A / B);
    }
    COMLAT_UNREACHABLE("bad arithmetic op");
  }
  const double A = L.asNumber(), B = R.asNumber();
  switch (Op) {
  case ArithOp::Add:
    return Value::real(A + B);
  case ArithOp::Sub:
    return Value::real(A - B);
  case ArithOp::Mul:
    return Value::real(A * B);
  case ArithOp::Div:
    assert(B != 0.0 && "division by zero in condition");
    return Value::real(A / B);
  }
  COMLAT_UNREACHABLE("bad arithmetic op");
}

Value comlat::evalTerm(const TermPtr &T, EvalContext &Ctx) {
  switch (T->K) {
  case Term::Kind::Arg: {
    const Invocation &Inv = invocationFor(Ctx, T->Inv);
    assert(T->ArgIndex < Inv.Args.size() && "argument index out of range");
    return Inv.Args[T->ArgIndex];
  }
  case Term::Kind::Ret:
    return invocationFor(Ctx, T->Inv).Ret;
  case Term::Kind::Const:
    return T->Literal;
  case Term::Kind::Apply: {
    InlineVec<Value, 4> Args;
    for (const TermPtr &A : T->Args)
      Args.push_back(evalTerm(A, Ctx));
    assert(Ctx.Resolver && "Apply node but no resolver supplied");
    return Ctx.Resolver->resolveApply(*T, Args);
  }
  case Term::Kind::Arith:
    return evalArithOp(T->Op, evalTerm(T->Lhs, Ctx), evalTerm(T->Rhs, Ctx));
  }
  COMLAT_UNREACHABLE("bad term kind");
}

bool comlat::evalCmpOp(CmpOp Op, const Value &L, const Value &R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
  case CmpOp::LE:
  case CmpOp::GT:
  case CmpOp::GE:
    break;
  }
  assert(L.isNumber() && R.isNumber() && "ordering on non-numeric values");
  const double A = L.asNumber(), B = R.asNumber();
  switch (Op) {
  case CmpOp::LT:
    return A < B;
  case CmpOp::LE:
    return A <= B;
  case CmpOp::GT:
    return A > B;
  case CmpOp::GE:
    return A >= B;
  default:
    COMLAT_UNREACHABLE("bad comparison op");
  }
}

bool comlat::evalFormula(const FormulaPtr &F, EvalContext &Ctx) {
  switch (F->K) {
  case Formula::Kind::True:
    return true;
  case Formula::Kind::False:
    return false;
  case Formula::Kind::Cmp:
    return evalCmpOp(F->Op, evalTerm(F->Lhs, Ctx), evalTerm(F->Rhs, Ctx));
  case Formula::Kind::Not:
    return !evalFormula(F->Kids[0], Ctx);
  case Formula::Kind::And:
    for (const FormulaPtr &Kid : F->Kids)
      if (!evalFormula(Kid, Ctx))
        return false;
    return true;
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      if (evalFormula(Kid, Ctx))
        return true;
    return false;
  }
  COMLAT_UNREACHABLE("bad formula kind");
}
