//===- core/Simplify.h - Formula normalization -------------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalizing simplification for condition formulas: constant folding,
/// flattening of nested conjunctions/disjunctions, identity/absorption
/// rules, de-duplication, and a stable child ordering. Lattice operations
/// (join = pointwise disjunction, meet = pointwise conjunction, §2.4) apply
/// this after combining formulas so that structural equality approximates
/// logical equality well enough for the syntactic implication rules.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_SIMPLIFY_H
#define COMLAT_CORE_SIMPLIFY_H

#include "core/Expr.h"

namespace comlat {

/// Returns a simplified, canonicalized formula logically equivalent to
/// \p F. Idempotent: simplify(simplify(F)) is structurally equal to
/// simplify(F).
FormulaPtr simplify(const FormulaPtr &F);

} // namespace comlat

#endif // COMLAT_CORE_SIMPLIFY_H
