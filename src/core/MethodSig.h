//===- core/MethodSig.h - Data-type signatures ------------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes the *signature* of an abstract data type: the set of methods m
/// in M (§2.1 of the paper) together with the registered state functions
/// (the `f(S, V, V, ...)` production of logic L1, Fig. 1) that commutativity
/// conditions may apply. Signatures are pure metadata; the concrete
/// behaviour of methods and state functions is bound later, by the runtime
/// (see runtime/Gatekeeper*.h) or by tests.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_METHODSIG_H
#define COMLAT_CORE_METHODSIG_H

#include "core/Value.h"
#include "support/Compiler.h"
#include "support/InlineVec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace comlat {

/// Index of a method within a DataTypeSig.
using MethodId = uint32_t;

/// Index of a state function within a DataTypeSig.
using StateFnId = uint32_t;

/// Static description of one ADT method.
struct MethodInfo {
  std::string Name;
  /// Number of declared arguments.
  unsigned NumArgs = 0;
  /// True if invocations produce a meaningful return value (otherwise the
  /// return is the unit value).
  bool HasRet = false;
  /// True if the method may change the *abstract* state of the structure.
  /// Read-only methods (e.g. contains, find, nearest) never need undo
  /// actions even when their concrete implementation mutates memory (path
  /// compression, §1 of the paper).
  bool Mutating = false;
};

/// Static description of one state function usable in conditions.
///
/// Pure functions (e.g. the kd-tree's `dist`) depend only on their value
/// arguments; impure ones (e.g. union-find's `rep`, `rank`, `loser`) also
/// read the abstract state they are applied in, which is what makes some
/// conditions fail the ONLINE-CHECKABLE test (Def. 7).
struct StateFnInfo {
  std::string Name;
  unsigned NumArgs = 0;
  /// True if the result depends only on the arguments, not on the state.
  bool Pure = false;
};

/// The signature of an abstract data type: named methods plus named state
/// functions. A CommSpec (core/Spec.h) is always relative to one signature.
class DataTypeSig {
public:
  explicit DataTypeSig(std::string Name) : Name(std::move(Name)) {}

  /// Registers a method and returns its id. Ids are dense and stable.
  MethodId addMethod(const std::string &Name, unsigned NumArgs, bool HasRet,
                     bool Mutating);

  /// Registers a state function and returns its id.
  StateFnId addStateFn(const std::string &Name, unsigned NumArgs, bool Pure);

  const std::string &name() const { return Name; }

  unsigned numMethods() const { return static_cast<unsigned>(Methods.size()); }
  unsigned numStateFns() const {
    return static_cast<unsigned>(StateFns.size());
  }

  const MethodInfo &method(MethodId M) const {
    assert(M < Methods.size() && "bad method id");
    return Methods[M];
  }
  const StateFnInfo &stateFn(StateFnId F) const {
    assert(F < StateFns.size() && "bad state-function id");
    return StateFns[F];
  }

  /// Finds a method by name; aborts if absent (signatures are static data,
  /// a miss is a programming error).
  MethodId methodByName(const std::string &Name) const;

  /// Finds a state function by name; aborts if absent.
  StateFnId stateFnByName(const std::string &Name) const;

private:
  std::string Name;
  std::vector<MethodInfo> Methods;
  std::vector<StateFnInfo> StateFns;
};

/// A runtime record of one method invocation (m(v))/r: the method, its
/// actual arguments and, once executed, its return value. Histories (§2.1)
/// are sequences of these.
struct Invocation {
  /// Inline argument slots: no registered method takes more than three
  /// arguments, so recording an invocation never allocates.
  using ArgList = InlineVec<Value, 3>;

  MethodId Method = 0;
  ArgList Args;
  Value Ret;

  Invocation() = default;
  Invocation(MethodId M, ValueSpan A) : Method(M) { assign(A); }
  Invocation(MethodId M, ValueSpan A, Value R) : Method(M), Ret(R) {
    assign(A);
  }

  void assign(ValueSpan A) {
    Args.clear();
    for (const Value &V : A)
      Args.push_back(V);
  }

  /// Renders e.g. "add(3)/true" for diagnostics.
  std::string str(const DataTypeSig &Sig) const;
};

} // namespace comlat

#endif // COMLAT_CORE_METHODSIG_H
