//===- core/Value.h - Dynamic values flowing through methods ---*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value type used for method arguments, return values and the
/// results of state functions in commutativity conditions (the V and F
/// productions of the logic L1, Fig. 1 of the paper). Values are small
/// tagged scalars: unit (no value), booleans, 64-bit integers (also used as
/// opaque handles for set keys, graph nodes, points, ...) and reals (used
/// for distances in the kd-tree specification).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_VALUE_H
#define COMLAT_CORE_VALUE_H

#include "support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <type_traits>

namespace comlat {

/// A small tagged scalar value.
///
/// Equality across Int and Real compares numerically; all other cross-kind
/// comparisons are false. Values are totally ordered (by kind, then payload)
/// so they can key ordered containers such as the abstract-lock table.
class Value {
public:
  enum class Kind : uint8_t { None, Bool, Int, Real };

  /// Constructs the unit value (used as the "return" of void methods).
  Value() : K(Kind::None), I(0) {}

  static Value none() { return Value(); }
  static Value boolean(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.I = B ? 1 : 0;
    return V;
  }
  static Value integer(int64_t X) {
    Value V;
    V.K = Kind::Int;
    V.I = X;
    return V;
  }
  static Value real(double X) {
    Value V;
    V.K = Kind::Real;
    V.D = X;
    return V;
  }

  Kind kind() const { return K; }
  bool isNone() const { return K == Kind::None; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isReal() const { return K == Kind::Real; }

  bool asBool() const {
    assert(isBool() && "value is not a bool");
    return I != 0;
  }
  int64_t asInt() const {
    assert(isInt() && "value is not an int");
    return I;
  }
  double asReal() const {
    assert(isReal() && "value is not a real");
    return D;
  }

  /// Returns the value as a double, promoting integers. Only valid for
  /// numeric kinds.
  double asNumber() const;

  /// True when both kinds are numeric (Int or Real).
  bool isNumber() const { return isInt() || isReal(); }

  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }

  /// Total order: by kind first, then payload (Int/Real compared within
  /// their own kind, so the order is consistent with operator== only for
  /// same-kind values; adequate for container keys).
  bool operator<(const Value &O) const;

  /// Stable 64-bit hash suitable for lock-table keying. Numerically equal
  /// Int/Real values may hash differently; the lock table normalizes kinds
  /// before hashing (see LockTable).
  uint64_t hash() const;

  /// Renders the value for diagnostics, e.g. "42", "true", "3.5", "()".
  std::string str() const;

private:
  Kind K;
  union {
    int64_t I;
    double D;
  };
};

/// A borrowed, read-only view of a contiguous Value sequence — the
/// argument-passing currency of the hot path (invocations, gate targets,
/// apply resolvers). Like llvm::ArrayRef it never owns storage: it is
/// valid exactly as long as the sequence it was built from, which makes
/// it safe as a parameter type (the callee finishes before the caller's
/// storage dies) and nothing else. Constructible from a braced list
/// (`{Value::integer(k)}`), from any contiguous container of Values
/// (std::vector, InlineVec), or from a pointer/length pair, so existing
/// call sites compile unchanged and never copy.
class ValueSpan {
public:
  ValueSpan() = default;
  ValueSpan(const Value *Data, size_t Size) : D(Data), N(Size) {}

  /// Views a braced list. The list's backing array lives to the end of
  /// the full-expression — long enough for a call argument, never for a
  /// stored span.
  ValueSpan(std::initializer_list<Value> IL) : D(IL.begin()), N(IL.size()) {}

  /// Views any contiguous container of Values.
  template <typename C,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<C>, ValueSpan> &&
                std::is_convertible_v<
                    decltype(std::declval<const C &>().data()),
                    const Value *>>>
  ValueSpan(const C &Container)
      : D(Container.data()), N(Container.size()) {}

  const Value *data() const { return D; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }

  const Value &operator[](size_t I) const {
    assert(I < N && "span index out of range");
    return D[I];
  }

  const Value *begin() const { return D; }
  const Value *end() const { return D + N; }

private:
  const Value *D = nullptr;
  size_t N = 0;
};

} // namespace comlat

#endif // COMLAT_CORE_VALUE_H
