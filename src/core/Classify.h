//===- core/Classify.h - SIMPLE / ONLINE-CHECKABLE / general ----*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognizes the paper's restricted logics syntactically:
///
///  * Definition 6 (SIMPLE, logic L2 / Fig. 6): `true`, `false`, or a
///    conjunction of disequalities `x != y` where x is an argument or
///    return of the first method and y of the second. We additionally
///    allow both sides to be wrapped in the *same* pure unary key function
///    `k(x) != k(y)`; that is exactly the shape produced by the disciplined
///    lock-coarsening transform of §4.2 (`part(a) != part(b)`), and the
///    abstract-lock construction of §3.2 carries over verbatim by locking
///    k(x) instead of x.
///
///  * Definition 7 (ONLINE-CHECKABLE, logic L3 / Fig. 9): no function of
///    the first state s1 may take values of the second invocation as
///    arguments — i.e. every S1-application mentions only v1/r1. Such
///    conditions can be discharged by a forward gatekeeper from logs
///    recorded when the first invocation ran.
///
///  * Everything else in L1 requires a general gatekeeper.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_CLASSIFY_H
#define COMLAT_CORE_CLASSIFY_H

#include "core/Expr.h"

#include <optional>

namespace comlat {

/// The implementation class a condition admits (§3.4's hierarchy).
enum class ConditionClass : uint8_t {
  Simple,          ///< Abstract locking suffices (Theorem 1).
  OnlineCheckable, ///< Needs at least a forward gatekeeper.
  General          ///< Needs a general gatekeeper.
};

/// Returns the most expressive of two classes (the cheaper scheme loses).
ConditionClass worseClass(ConditionClass A, ConditionClass B);

/// Printable name ("SIMPLE", "ONLINE-CHECKABLE", "GENERAL").
const char *conditionClassName(ConditionClass C);

/// One value slot of an invocation: either argument \p ArgIndex or the
/// return value.
struct Slot {
  bool IsRet = false;
  unsigned ArgIndex = 0;

  bool operator==(const Slot &O) const {
    return IsRet == O.IsRet && (IsRet || ArgIndex == O.ArgIndex);
  }
  bool operator<(const Slot &O) const {
    if (IsRet != O.IsRet)
      return !IsRet;
    return !IsRet && ArgIndex < O.ArgIndex;
  }
};

/// One conjunct `k(x) != k(y)` of a SIMPLE condition; Lhs is the slot of
/// the first method, Rhs of the second. KeyFn is the optional shared pure
/// unary key function (absent for plain `x != y`).
struct SimpleClause {
  Slot Lhs;
  Slot Rhs;
  std::optional<StateFnId> KeyFn;

  bool operator==(const SimpleClause &O) const {
    return Lhs == O.Lhs && Rhs == O.Rhs && KeyFn == O.KeyFn;
  }
  bool operator<(const SimpleClause &O) const;
};

/// The normal form of a SIMPLE condition.
struct SimpleForm {
  enum class Kind : uint8_t { False, True, Clauses };
  Kind K = Kind::False;
  /// Nonempty iff K == Clauses; the condition is the conjunction of the
  /// clauses (sorted, de-duplicated).
  std::vector<SimpleClause> Clauses;
};

/// Attempts to put \p F into SIMPLE normal form (after simplification).
/// Returns std::nullopt when the condition is not SIMPLE.
std::optional<SimpleForm> tryGetSimple(const FormulaPtr &F,
                                       const DataTypeSig &Sig);

/// True when \p F satisfies Definition 7: every application over s1 takes
/// only first-invocation values.
bool isOnlineCheckable(const FormulaPtr &F);

/// Classifies one condition.
ConditionClass classifyCondition(const FormulaPtr &F, const DataTypeSig &Sig);

/// Collects the maximal Apply subterms of \p F that are evaluable at the
/// time the *first* invocation executes: applications over s1 or pure
/// applications whose arguments mention only first-invocation values.
/// These are the "primitive functions" C_m that a forward gatekeeper
/// pre-evaluates and logs (§3.3.1); for the kd-tree this yields
/// dist(v1[0], r1), reproducing the paper's `(x, dist(x, r))` log entries.
/// Results are de-duplicated by structural key.
std::vector<TermPtr> collectLoggableApplies(const FormulaPtr &F);

/// Collects the maximal Apply subterms over s2 (evaluated live, in the
/// current state, when the second invocation is checked). Asserts that
/// none of them mentions r2: the check must evaluate them before executing
/// the new invocation, when s2 still is the current state.
std::vector<TermPtr> collectS2Applies(const FormulaPtr &F);

} // namespace comlat

#endif // COMLAT_CORE_CLASSIFY_H
