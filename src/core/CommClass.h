//===- core/CommClass.h - First-class spec classification -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-class classification of a commutativity specification. Every
/// runtime scheme ultimately asks the same questions of a spec — is this
/// pair's condition trivially true, trivially false, or conditional; is it
/// SIMPLE (lockable), key-separable (stripable), free of state reads; does
/// this method always self-commute — and before this API each scheme
/// re-derived the answers from the formulas at its own construction site.
/// SpecClassification computes them once, at spec-construction time, into
/// plain per-pair / per-method records the hot paths consult as flags:
///
///  * PairClass — the ordered pair's CommClass (AlwaysCommutes /
///    ConditionallyCommutes / NeverCommutes), its oriented simplified
///    condition, the implementation class it admits (Definition 6/7
///    hierarchy), its SIMPLE normal form when one exists, and the striping
///    metadata (key-separable disjunct, state-freeness) the striped
///    gatekeeper admission is built on.
///
///  * MethodClass — the method's self-pair class plus the *privatization*
///    verdict: a method whose spec says it always commutes with itself
///    (and whose updates return nothing) can skip conflict detection
///    entirely and accumulate into a per-worker replica, CommTM-style
///    (PAPERS.md: Balaji/Tirumala/Lucia). The verdict is mechanical:
///    computed here once, consulted as a bitmask by the detectors'
///    divert hooks (runtime/Privatizer.h).
///
/// Consumers reach this through CommSpec::classification() /
/// classifyPair() / classifyMethod(); the Gatekeeper's PairPlans, the
/// LockScheme mode-compatibility construction (and through it every
/// AbstractLockManager compatibility check), and the striped-admission
/// analysis are all derived from these records.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_COMMCLASS_H
#define COMLAT_CORE_COMMCLASS_H

#include "core/Classify.h"
#include "core/CondIR.h"
#include "core/Expr.h"

#include <optional>
#include <string>
#include <vector>

namespace comlat {

class CommSpec;

/// How an (ordered) method pair commutes under the active lattice point.
enum class CommClass : uint8_t {
  AlwaysCommutes,         ///< Condition simplified to true.
  ConditionallyCommutes,  ///< A genuine condition must be checked.
  NeverCommutes           ///< Condition simplified to false.
};

/// Printable name ("ALWAYS", "CONDITIONAL", "NEVER").
const char *commClassName(CommClass C);

/// Classification of one ordered method pair (first, second).
struct PairClass {
  CommClass K = CommClass::ConditionallyCommutes;

  /// The pair's condition, oriented with `first` as the first invocation
  /// and simplified. Always set (top()/bottom() for the trivial classes).
  FormulaPtr Cond;

  /// The implementation class the condition admits (§3.4's hierarchy):
  /// SIMPLE conditions lock, ONLINE-CHECKABLE ones forward-gate, the rest
  /// need a general gatekeeper.
  ConditionClass Impl = ConditionClass::Simple;

  /// The SIMPLE normal form; engaged iff Impl == ConditionClass::Simple.
  /// This is what the LockScheme mode-compatibility construction consumes.
  std::optional<SimpleForm> Simple;

  /// Key footprint: when Separable, the condition carries a top-level
  /// disjunct `m1.arg[KeyArg1] != m2.arg[KeyArg2]`, so invocations with
  /// different keys trivially commute (the striped-admission premise).
  bool Separable = false;
  unsigned KeyArg1 = 0;
  unsigned KeyArg2 = 0;

  /// True when no Apply subterm of Cond reads abstract state (S1 or S2):
  /// the condition is decidable from invocation values (and pure
  /// functions) alone. Striped admission requires this — there is no
  /// single historical state to resolve state reads against.
  bool StateFree = true;

  bool always() const { return K == CommClass::AlwaysCommutes; }
  bool never() const { return K == CommClass::NeverCommutes; }
};

/// Classification of one method against the whole specification.
struct MethodClass {
  /// The self-pair class: how invocations of this method commute with
  /// each other.
  CommClass Self = CommClass::ConditionallyCommutes;

  /// Bit N set when (this, N) always commutes (both orientations; specs
  /// are symmetric so one orientation decides).
  uint64_t AlwaysMask = 0;

  /// The mechanical privatization verdict: true when the method is a
  /// mutating, value-returning-nothing unconditional self-commuter that
  /// also unconditionally commutes with every other privatizable method
  /// of the type. Such updates may bypass conflict detection into a
  /// per-worker replica; the serial-replay argument needs the whole
  /// privatized set to be pairwise AlwaysCommutes, hence the closure
  /// condition (computed greedily in method-id order).
  bool Privatizable = false;

  /// True for non-privatizable methods that do NOT always commute with
  /// some privatizable method: executing one forces the runtime to merge
  /// the outstanding privatized deltas first (the "first non-commuting
  /// access" of the privatize/merge lifecycle).
  bool PrivBlocker = false;
};

/// The complete classification of a specification, computed once from the
/// spec objects. Obtain through CommSpec::classification(); the spec must
/// be complete, and the cache is invalidated when the spec changes.
class SpecClassification {
public:
  /// Builds the classification. \p Spec must be complete and outlive any
  /// use of the Cond pointers held here.
  explicit SpecClassification(const CommSpec &Spec);

  /// The ordered pair (\p First as the first invocation).
  const PairClass &pair(MethodId First, MethodId Second) const {
    return Pairs[First][Second];
  }

  const MethodClass &method(MethodId M) const { return Methods[M]; }

  /// Bit M set when method M is privatizable (see MethodClass).
  uint64_t privatizableMask() const { return PrivMask; }

  /// Bit M set when method M is a privatization blocker (see MethodClass).
  uint64_t blockerMask() const { return BlockMask; }

  /// The worst implementation class over all ordered pairs (what
  /// CommSpec::classify() reports).
  ConditionClass worstClass() const { return Worst; }

  /// Multi-line rendering for diagnostics and docs.
  std::string str(const DataTypeSig &Sig) const;

private:
  std::vector<std::vector<PairClass>> Pairs; ///< [first][second]
  std::vector<MethodClass> Methods;
  uint64_t PrivMask = 0;
  uint64_t BlockMask = 0;
  ConditionClass Worst = ConditionClass::Simple;
};

} // namespace comlat

#endif // COMLAT_CORE_COMMCLASS_H
