//===- core/Lattice.cpp - The commutativity lattice ------------------------===//

#include "core/Lattice.h"
#include "core/Eval.h"
#include "core/Simplify.h"
#include "support/Random.h"

#include <algorithm>
#include <map>
#include <set>

using namespace comlat;
using namespace comlat::dsl;

//===----------------------------------------------------------------------===//
// Exact decision on the SIMPLE fragment
//===----------------------------------------------------------------------===//

/// True when clause \p C1 implies clause \p C2 for every interpretation:
/// same slots and either the same key function, or C1 keyed and C2 plain
/// (k(x) != k(y) implies x != y, since x = y forces k(x) = k(y)).
static bool clauseImplies(const SimpleClause &C1, const SimpleClause &C2) {
  if (!(C1.Lhs == C2.Lhs) || !(C1.Rhs == C2.Rhs))
    return false;
  if (C1.KeyFn == C2.KeyFn)
    return true;
  return C1.KeyFn.has_value() && !C2.KeyFn.has_value();
}

/// Exact implication on SIMPLE normal forms. A conjunction implies another
/// iff every clause of the consequent is implied by some clause of the
/// antecedent (clauses over distinct slot pairs are logically independent
/// for value domains with at least two elements).
static bool simpleImplies(const SimpleForm &F1, const SimpleForm &F2) {
  if (F1.K == SimpleForm::Kind::False || F2.K == SimpleForm::Kind::True)
    return true;
  if (F1.K == SimpleForm::Kind::True)
    return F2.K == SimpleForm::Kind::True;
  if (F2.K == SimpleForm::Kind::False)
    return false; // F1 is a satisfiable conjunction.
  for (const SimpleClause &C2 : F2.Clauses) {
    bool Covered = false;
    for (const SimpleClause &C1 : F1.Clauses)
      if (clauseImplies(C1, C2)) {
        Covered = true;
        break;
      }
    if (!Covered)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Syntactic sufficient rules
//===----------------------------------------------------------------------===//

/// Returns the disjunct set of \p F (the singleton {F} if not an Or).
static std::vector<FormulaPtr> disjuncts(const FormulaPtr &F) {
  if (F->K == Formula::Kind::Or)
    return F->Kids;
  return {F};
}

/// Returns the conjunct set of \p F (the singleton {F} if not an And).
static std::vector<FormulaPtr> conjuncts(const FormulaPtr &F) {
  if (F->K == Formula::Kind::And)
    return F->Kids;
  return {F};
}

/// Sound structural check: every disjunct of F1 occurs among F2's
/// disjuncts (covers drop-disjunct strengthening), or every conjunct of F2
/// occurs among F1's conjuncts (conjunction weakening).
static bool structurallyImplies(const FormulaPtr &F1, const FormulaPtr &F2) {
  if (structurallyEqual(F1, F2))
    return true;
  std::set<std::string> F2Disjuncts;
  for (const FormulaPtr &D : disjuncts(F2))
    F2Disjuncts.insert(D->key());
  bool AllCovered = true;
  for (const FormulaPtr &D : disjuncts(F1))
    if (!F2Disjuncts.count(D->key())) {
      AllCovered = false;
      break;
    }
  if (AllCovered)
    return true;
  std::set<std::string> F1Conjuncts;
  for (const FormulaPtr &C : conjuncts(F1))
    F1Conjuncts.insert(C->key());
  for (const FormulaPtr &C : conjuncts(F2))
    if (!F1Conjuncts.count(C->key()))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Randomized refutation over uninterpreted state functions
//===----------------------------------------------------------------------===//

namespace {
/// Crude kind inference for slots and applications so random assignments
/// are type-correct (ordering comparisons require numbers, boolean
/// constants force booleans).
class KindInference {
public:
  void scan(const FormulaPtr &F) { scanFormula(F); }

  Value::Kind kindFor(const std::string &Key) const {
    const auto It = Kinds.find(Key);
    return It == Kinds.end() ? Value::Kind::Int : It->second;
  }

private:
  void note(const TermPtr &T, Value::Kind K) {
    if (T->K == Term::Kind::Const)
      return;
    Kinds.emplace(T->key(), K); // First constraint wins.
  }

  void scanTerm(const TermPtr &T) {
    switch (T->K) {
    case Term::Kind::Arg:
    case Term::Kind::Ret:
    case Term::Kind::Const:
      return;
    case Term::Kind::Apply:
      for (const TermPtr &A : T->Args)
        scanTerm(A);
      return;
    case Term::Kind::Arith:
      note(T->Lhs, Value::Kind::Int);
      note(T->Rhs, Value::Kind::Int);
      scanTerm(T->Lhs);
      scanTerm(T->Rhs);
      return;
    }
  }

  void scanFormula(const FormulaPtr &F) {
    switch (F->K) {
    case Formula::Kind::True:
    case Formula::Kind::False:
      return;
    case Formula::Kind::Cmp: {
      const bool Ordering = F->Op != CmpOp::EQ && F->Op != CmpOp::NE;
      if (Ordering) {
        note(F->Lhs, Value::Kind::Int);
        note(F->Rhs, Value::Kind::Int);
      } else {
        // Propagate boolean-ness from constants.
        if (F->Lhs->K == Term::Kind::Const && F->Lhs->Literal.isBool())
          note(F->Rhs, Value::Kind::Bool);
        if (F->Rhs->K == Term::Kind::Const && F->Rhs->Literal.isBool())
          note(F->Lhs, Value::Kind::Bool);
      }
      scanTerm(F->Lhs);
      scanTerm(F->Rhs);
      return;
    }
    case Formula::Kind::Not:
    case Formula::Kind::And:
    case Formula::Kind::Or:
      for (const FormulaPtr &Kid : F->Kids)
        scanFormula(Kid);
      return;
    }
  }

  std::map<std::string, Value::Kind> Kinds;
};

/// Resolves applications as uninterpreted functions: deterministic hash of
/// (function, state tag, arguments, trial salt) mapped into a small domain
/// of the inferred kind. Any model found this way is a legitimate
/// interpretation, so a counterexample soundly refutes implication.
class MockResolver : public ApplyResolver {
public:
  MockResolver(const KindInference &Kinds, uint64_t Salt)
      : Kinds(Kinds), Salt(Salt) {}

  Value resolveApply(const Term &Apply, ValueSpan Args) override {
    uint64_t H = Salt * 0x9E3779B97F4A7C15ull + Apply.Fn * 0x100000001B3ull +
                 static_cast<uint64_t>(Apply.State) * 0x9E3779B97F4A7C15ull;
    for (const Value &A : Args)
      H = (H ^ A.hash()) * 0x100000001B3ull;
    // Full avalanche so the state tag and arguments reach the low bits the
    // small domains are carved from.
    H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ull;
    H = (H ^ (H >> 27)) * 0x94D049BB133111EBull;
    H ^= H >> 31;
    switch (Kinds.kindFor(Apply.key())) {
    case Value::Kind::Bool:
      return Value::boolean(H & 1);
    case Value::Kind::Real:
      return Value::real(static_cast<double>(H % 8) / 2.0);
    default:
      return Value::integer(static_cast<int64_t>(H % 4));
    }
  }

private:
  const KindInference &Kinds;
  uint64_t Salt;
};
} // namespace

/// Computes the number of argument slots each invocation needs to satisfy
/// all Arg references in \p F.
static void scanArity(const FormulaPtr &F, unsigned &Args1, unsigned &Args2) {
  struct Walker {
    unsigned &Args1, &Args2;
    void term(const TermPtr &T) {
      switch (T->K) {
      case Term::Kind::Arg: {
        unsigned &Slot = T->Inv == InvIndex::Inv1 ? Args1 : Args2;
        Slot = std::max(Slot, T->ArgIndex + 1);
        return;
      }
      case Term::Kind::Ret:
      case Term::Kind::Const:
        return;
      case Term::Kind::Apply:
        for (const TermPtr &A : T->Args)
          term(A);
        return;
      case Term::Kind::Arith:
        term(T->Lhs);
        term(T->Rhs);
        return;
      }
    }
    void formula(const FormulaPtr &G) {
      if (G->K == Formula::Kind::Cmp) {
        term(G->Lhs);
        term(G->Rhs);
        return;
      }
      for (const FormulaPtr &Kid : G->Kids)
        formula(Kid);
    }
  };
  Walker W{Args1, Args2};
  W.formula(F);
}

static Value randomValueOfKind(Rng &R, Value::Kind K) {
  switch (K) {
  case Value::Kind::Bool:
    return Value::boolean(R.nextBool());
  case Value::Kind::Real:
    return Value::real(static_cast<double>(R.nextBelow(8)) / 2.0);
  default:
    return Value::integer(static_cast<int64_t>(R.nextBelow(4)));
  }
}

Tri comlat::implies(const FormulaPtr &RawF1, const FormulaPtr &RawF2,
                    const DataTypeSig &Sig, unsigned Trials, uint64_t Seed) {
  const FormulaPtr F1 = simplify(RawF1);
  const FormulaPtr F2 = simplify(RawF2);
  if (F1->isFalse() || F2->isTrue())
    return Tri::Yes;
  if (F1->isTrue() && F2->isFalse())
    return Tri::No;
  const std::optional<SimpleForm> S1 = tryGetSimple(F1, Sig);
  const std::optional<SimpleForm> S2 = tryGetSimple(F2, Sig);
  if (S1 && S2)
    return simpleImplies(*S1, *S2) ? Tri::Yes : Tri::No;
  if (structurallyImplies(F1, F2))
    return Tri::Yes;
  // Decomposition rules (sound, recursion bounded by formula depth):
  // F1 => some disjunct of F2 suffices, as does some conjunct of F1 => F2.
  if (F2->K == Formula::Kind::Or)
    for (const FormulaPtr &D : F2->Kids)
      if (implies(F1, D, Sig, Trials, Seed) == Tri::Yes)
        return Tri::Yes;
  if (F1->K == Formula::Kind::And)
    for (const FormulaPtr &C : F1->Kids)
      if (implies(C, F2, Sig, Trials, Seed) == Tri::Yes)
        return Tri::Yes;

  unsigned Args1 = 0, Args2 = 0;
  scanArity(F1, Args1, Args2);
  scanArity(F2, Args1, Args2);
  KindInference Kinds;
  Kinds.scan(F1);
  Kinds.scan(F2);

  Rng R(Seed);
  for (unsigned Trial = 0; Trial != Trials; ++Trial) {
    Invocation Inv1, Inv2;
    for (unsigned I = 0; I != Args1; ++I)
      Inv1.Args.push_back(
          randomValueOfKind(R, Kinds.kindFor(dsl::arg1(I)->key())));
    for (unsigned I = 0; I != Args2; ++I)
      Inv2.Args.push_back(
          randomValueOfKind(R, Kinds.kindFor(dsl::arg2(I)->key())));
    Inv1.Ret = randomValueOfKind(R, Kinds.kindFor(dsl::ret1()->key()));
    Inv2.Ret = randomValueOfKind(R, Kinds.kindFor(dsl::ret2()->key()));
    MockResolver Resolver(Kinds, /*Salt=*/R.next());
    EvalContext Ctx{&Inv1, &Inv2, &Resolver};
    if (evalFormula(F1, Ctx) && !evalFormula(F2, Ctx))
      return Tri::No;
  }
  return Tri::Unknown;
}

Tri comlat::specLeq(const CommSpec &A, const CommSpec &B, unsigned Trials,
                    uint64_t Seed) {
  assert(&A.sig() == &B.sig() && "specs over different signatures");
  Tri Result = Tri::Yes;
  const unsigned N = A.sig().numMethods();
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = 0; M2 != N; ++M2) {
      switch (implies(A.get(M1, M2), B.get(M1, M2), A.sig(), Trials, Seed)) {
      case Tri::No:
        return Tri::No;
      case Tri::Unknown:
        Result = Tri::Unknown;
        break;
      case Tri::Yes:
        break;
      }
    }
  return Result;
}

//===----------------------------------------------------------------------===//
// Join / meet / bottom
//===----------------------------------------------------------------------===//

static CommSpec pointwise(const CommSpec &A, const CommSpec &B,
                          std::string Name, bool IsJoin) {
  assert(&A.sig() == &B.sig() && "specs over different signatures");
  CommSpec Out(&A.sig(), std::move(Name));
  const unsigned N = A.sig().numMethods();
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = M1; M2 != N; ++M2) {
      const FormulaPtr FA = A.get(M1, M2), FB = B.get(M1, M2);
      Out.set(M1, M2, IsJoin ? disj(FA, FB) : conj(FA, FB));
    }
  return Out;
}

CommSpec comlat::specJoin(const CommSpec &A, const CommSpec &B,
                          std::string Name) {
  return pointwise(A, B, std::move(Name), /*IsJoin=*/true);
}

CommSpec comlat::specMeet(const CommSpec &A, const CommSpec &B,
                          std::string Name) {
  return pointwise(A, B, std::move(Name), /*IsJoin=*/false);
}

CommSpec comlat::bottomSpec(const DataTypeSig &Sig, std::string Name) {
  CommSpec Out(&Sig, std::move(Name));
  for (MethodId M1 = 0; M1 != Sig.numMethods(); ++M1)
    for (MethodId M2 = M1; M2 != Sig.numMethods(); ++M2)
      Out.set(M1, M2, bottom());
  return Out;
}

//===----------------------------------------------------------------------===//
// Strengthening transforms (§4)
//===----------------------------------------------------------------------===//

FormulaPtr comlat::simpleUnderApprox(const FormulaPtr &Raw,
                                     const DataTypeSig &Sig) {
  const FormulaPtr F = simplify(Raw);
  if (tryGetSimple(F, Sig))
    return F;
  switch (F->K) {
  case Formula::Kind::Or: {
    // Keep the weakest SIMPLE disjunct (fewest clauses): any SIMPLE
    // disjunct implies F, so the choice is sound; fewer clauses reject
    // fewer schedules.
    FormulaPtr Best;
    size_t BestClauses = SIZE_MAX;
    for (const FormulaPtr &Kid : F->Kids) {
      const std::optional<SimpleForm> SF = tryGetSimple(Kid, Sig);
      if (!SF || SF->K != SimpleForm::Kind::Clauses)
        continue;
      if (SF->Clauses.size() < BestClauses) {
        BestClauses = SF->Clauses.size();
        Best = Kid;
      }
    }
    return Best ? Best : bottom();
  }
  case Formula::Kind::And: {
    std::vector<FormulaPtr> Kids;
    for (const FormulaPtr &Kid : F->Kids)
      Kids.push_back(simpleUnderApprox(Kid, Sig));
    return simplify(conj(std::move(Kids)));
  }
  default:
    return bottom();
  }
}

CommSpec comlat::simpleUnderApproxSpec(const CommSpec &Spec,
                                       std::string Name) {
  CommSpec Out(&Spec.sig(), std::move(Name));
  const unsigned N = Spec.sig().numMethods();
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = M1; M2 != N; ++M2)
      Out.set(M1, M2, simpleUnderApprox(Spec.get(M1, M2), Spec.sig()));
  return Out;
}

/// Rebuilds the term for one side of a SIMPLE clause.
static TermPtr slotTerm(InvIndex Inv, const Slot &S) {
  return S.IsRet ? ret(Inv) : arg(Inv, S.ArgIndex);
}

CommSpec comlat::partitionSpec(const CommSpec &Spec, StateFnId PartFn,
                               std::string Name) {
  assert(Spec.sig().stateFn(PartFn).Pure &&
         Spec.sig().stateFn(PartFn).NumArgs == 1 &&
         "partition function must be pure and unary");
  CommSpec Out(&Spec.sig(), std::move(Name));
  const unsigned N = Spec.sig().numMethods();
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = M1; M2 != N; ++M2) {
      const FormulaPtr F = Spec.get(M1, M2);
      const std::optional<SimpleForm> SF = tryGetSimple(F, Spec.sig());
      assert(SF && "partitionSpec requires a SIMPLE specification");
      if (SF->K != SimpleForm::Kind::Clauses) {
        Out.set(M1, M2, F);
        continue;
      }
      std::vector<FormulaPtr> Clauses;
      for (const SimpleClause &C : SF->Clauses) {
        assert(!C.KeyFn && "clause already carries a key function");
        Clauses.push_back(
            ne(apply(PartFn, StateRef::None,
                     {slotTerm(InvIndex::Inv1, C.Lhs)}),
               apply(PartFn, StateRef::None,
                     {slotTerm(InvIndex::Inv2, C.Rhs)})));
      }
      Out.set(M1, M2, simplify(conj(std::move(Clauses))));
    }
  return Out;
}
