//===- core/MethodSig.cpp - Data-type signatures --------------------------===//

#include "core/MethodSig.h"
#include "core/Value.h"

using namespace comlat;

MethodId DataTypeSig::addMethod(const std::string &MName, unsigned NumArgs,
                                bool HasRet, bool Mutating) {
  Methods.push_back(MethodInfo{MName, NumArgs, HasRet, Mutating});
  return static_cast<MethodId>(Methods.size() - 1);
}

StateFnId DataTypeSig::addStateFn(const std::string &FName, unsigned NumArgs,
                                  bool Pure) {
  StateFns.push_back(StateFnInfo{FName, NumArgs, Pure});
  return static_cast<StateFnId>(StateFns.size() - 1);
}

MethodId DataTypeSig::methodByName(const std::string &MName) const {
  for (MethodId M = 0; M != Methods.size(); ++M)
    if (Methods[M].Name == MName)
      return M;
  COMLAT_UNREACHABLE("unknown method name");
}

StateFnId DataTypeSig::stateFnByName(const std::string &FName) const {
  for (StateFnId F = 0; F != StateFns.size(); ++F)
    if (StateFns[F].Name == FName)
      return F;
  COMLAT_UNREACHABLE("unknown state-function name");
}

std::string Invocation::str(const DataTypeSig &Sig) const {
  std::string Out = Sig.method(Method).Name + "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Args[I].str();
  }
  Out += ")";
  if (Sig.method(Method).HasRet)
    Out += "/" + Ret.str();
  return Out;
}
