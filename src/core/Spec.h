//===- core/Spec.h - Commutativity specifications ---------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A commutativity specification (§2.3): one condition formula per
/// unordered pair of methods of a data type. Conditions are stored in one
/// orientation (lower method id as the first invocation) and mirrored on
/// demand, following the paper's convention that specifications are
/// symmetric (§2.3 fn. 5).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_SPEC_H
#define COMLAT_CORE_SPEC_H

#include "core/Classify.h"
#include "core/CommClass.h"
#include "core/Expr.h"

#include <map>
#include <memory>
#include <mutex>

namespace comlat {

/// A complete commutativity specification for a data type.
class CommSpec {
public:
  /// Creates an empty spec over \p Sig. The signature must outlive the
  /// spec. \p Name labels the lattice point, e.g. "set-precise".
  CommSpec(const DataTypeSig *Sig, std::string Name);

  const DataTypeSig &sig() const { return *Sig; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Defines the condition for the pair (\p M1, \p M2), with \p F oriented
  /// so that M1 is the first invocation. Symmetric entries are derived by
  /// mirroring; self-pair formulas should be mirror-symmetric.
  void set(MethodId M1, MethodId M2, FormulaPtr F);

  /// Returns the condition for (\p M1 first, \p M2 second). Aborts if the
  /// pair was never defined (specifications must be complete).
  FormulaPtr get(MethodId M1, MethodId M2) const;

  /// True when a condition exists for every unordered method pair.
  bool isComplete() const;

  /// Classifies the whole specification: the worst class over all ordered
  /// pairs (a spec is SIMPLE only if every orientation is SIMPLE, etc.).
  ConditionClass classify() const;

  /// The first-class classification of this (complete) specification,
  /// computed on first use and cached; set() invalidates the cache.
  /// Detector constructors (Gatekeeper PairPlans, LockScheme mode
  /// compatibility, the striped-admission analysis, privatization divert
  /// masks) are all derived from this instead of re-deriving per-pair
  /// answers from the formulas.
  const SpecClassification &classification() const;

  /// Classification of the ordered pair (\p M1 first, \p M2 second).
  const PairClass &classifyPair(MethodId M1, MethodId M2) const {
    return classification().pair(M1, M2);
  }

  /// Classification of method \p M against the whole spec.
  const MethodClass &classifyMethod(MethodId M) const {
    return classification().method(M);
  }

  /// Pretty multi-line rendering for diagnostics and docs.
  std::string str() const;

  /// Iterates over stored (canonical-orientation) conditions.
  const std::map<std::pair<MethodId, MethodId>, FormulaPtr> &
  conditions() const {
    return Conditions;
  }

private:
  const DataTypeSig *Sig;
  std::string Name;
  /// Keyed by (min(M1,M2), max(M1,M2)); formula oriented with key.first as
  /// the first invocation.
  std::map<std::pair<MethodId, MethodId>, FormulaPtr> Conditions;

  /// Lazily built classification cache. Like Expr.h's KeyCache it does not
  /// survive copies (a copied or assigned spec re-derives on first use), so
  /// CommSpec stays freely copyable for the lattice operations that return
  /// specs by value. Guarded by a mutex: building is a cold
  /// construction-time path, but long-lived specs (the static lattice
  /// points) may be consulted from concurrently constructed detectors.
  struct ClassCache {
    ClassCache() = default;
    ClassCache(const ClassCache &) {}
    ClassCache &operator=(const ClassCache &) {
      std::lock_guard<std::mutex> Guard(Mu);
      C.reset();
      return *this;
    }

    mutable std::mutex Mu;
    mutable std::unique_ptr<SpecClassification> C;
  };
  ClassCache Cache;
};

} // namespace comlat

#endif // COMLAT_CORE_SPEC_H
