//===- core/CondIR.cpp - Compiled commutativity conditions ----------------===//

#include "core/CondIR.h"
#include "core/Simplify.h"

#include <sstream>

using namespace comlat;

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

Value CondProgram::eval(const Inputs &In) const {
  assert(In.NumExt >= NumExt &&
         "fewer external slots supplied than the program was compiled with");
  Value Stack[MaxStackDepth];
  unsigned SP = 0;
  Value Memo[MaxApplySlots];
  uint32_t MemoValid = 0;

  for (size_t PC = 0, N = Code.size(); PC != N; ++PC) {
    const Insn &I = Code[PC];
    switch (I.Op) {
    case OpCode::PushArg: {
      const Frame &F = I.Sub == uint8_t(InvIndex::Inv1) ? In.Inv1 : In.Inv2;
      assert(I.A < F.NumArgs && "argument index out of range");
      Stack[SP++] = F.Args[I.A];
      break;
    }
    case OpCode::PushRet: {
      const Frame &F = I.Sub == uint8_t(InvIndex::Inv1) ? In.Inv1 : In.Inv2;
      assert(F.Ret && "program reads a return value the caller did not bind");
      Stack[SP++] = *F.Ret;
      break;
    }
    case OpCode::PushConst:
      Stack[SP++] = Pool[I.A];
      break;
    case OpCode::PushExt:
      assert(I.A < In.NumExt && "external slot out of range");
      Stack[SP++] = In.Ext[I.A];
      break;
    case OpCode::PushApply: {
      SP -= I.B;
      if (MemoValid & (1u << I.A)) {
        Stack[SP++] = Memo[I.A];
        break;
      }
      const ApplySlot &S = Applies[I.A];
      assert(In.Resolver && "apply slot but no resolver supplied");
      // The span borrows the evaluation stack in place: the resolver runs
      // before anything else is pushed, so no copy is ever needed.
      const Value V =
          In.Resolver->resolveApply(*S.T, ValueSpan(Stack + SP, I.B));
      Memo[I.A] = V;
      MemoValid |= 1u << I.A;
      Stack[SP++] = V;
      break;
    }
    case OpCode::Arith: {
      const Value R = Stack[--SP];
      const Value L = Stack[--SP];
      Stack[SP++] = evalArithOp(static_cast<ArithOp>(I.Sub), L, R);
      break;
    }
    case OpCode::Cmp: {
      const Value R = Stack[--SP];
      const Value L = Stack[--SP];
      Stack[SP++] =
          Value::boolean(evalCmpOp(static_cast<CmpOp>(I.Sub), L, R));
      break;
    }
    case OpCode::Not:
      Stack[SP - 1] = Value::boolean(!Stack[SP - 1].asBool());
      break;
    case OpCode::BrFalsePeek:
      if (!Stack[SP - 1].asBool())
        PC = I.B - 1; // The loop increment lands on the target.
      break;
    case OpCode::BrTruePeek:
      if (Stack[SP - 1].asBool())
        PC = I.B - 1;
      break;
    case OpCode::Pop:
      --SP;
      break;
    case OpCode::Halt:
      assert(SP == 1 && "unbalanced stack at halt");
      return Stack[0];
    }
  }
  COMLAT_UNREACHABLE("compiled program fell off the end");
}

std::string CondProgram::disassemble(const DataTypeSig *Sig) const {
  std::ostringstream OS;
  for (size_t PC = 0; PC != Code.size(); ++PC) {
    const Insn &I = Code[PC];
    OS << (PC < 10 ? "  " : " ") << PC << ": ";
    switch (I.Op) {
    case OpCode::PushArg:
      OS << "push v" << unsigned(I.Sub) << "[" << I.A << "]";
      break;
    case OpCode::PushRet:
      OS << "push r" << unsigned(I.Sub);
      break;
    case OpCode::PushConst:
      OS << "push " << Pool[I.A].str();
      break;
    case OpCode::PushExt:
      OS << "push ext[" << I.A << "]";
      break;
    case OpCode::PushApply: {
      const ApplySlot &S = Applies[I.A];
      OS << "apply slot " << I.A << " ";
      OS << (Sig ? Sig->stateFn(S.Fn).Name
                 : "f" + std::to_string(S.Fn));
      OS << "/" << I.B;
      if (S.State != StateRef::None)
        OS << (S.State == StateRef::S1 ? " @s1" : " @s2");
      break;
    }
    case OpCode::Arith: {
      static const char *Names[] = {"add", "sub", "mul", "div"};
      OS << "arith " << Names[I.Sub];
      break;
    }
    case OpCode::Cmp: {
      static const char *Names[] = {"eq", "ne", "lt", "le", "gt", "ge"};
      OS << "cmp " << Names[I.Sub];
      break;
    }
    case OpCode::Not:
      OS << "not";
      break;
    case OpCode::BrFalsePeek:
      OS << "br.false " << I.B;
      break;
    case OpCode::BrTruePeek:
      OS << "br.true " << I.B;
      break;
    case OpCode::Pop:
      OS << "pop";
      break;
    case OpCode::Halt:
      OS << "halt";
      break;
    }
    OS << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Key footprint
//===----------------------------------------------------------------------===//

/// True when \p F is exactly `m1.argI != m2.argJ` (either orientation).
static bool clauseIsKeySeparable(const Formula &F, KeySeparability &Out) {
  if (F.K != Formula::Kind::Cmp || F.Op != CmpOp::NE)
    return false;
  const Term &L = *F.Lhs, &R = *F.Rhs;
  if (L.K != Term::Kind::Arg || R.K != Term::Kind::Arg || L.Inv == R.Inv)
    return false;
  Out.Separable = true;
  if (L.Inv == InvIndex::Inv1) {
    Out.Arg1 = L.ArgIndex;
    Out.Arg2 = R.ArgIndex;
  } else {
    Out.Arg1 = R.ArgIndex;
    Out.Arg2 = L.ArgIndex;
  }
  return true;
}

KeySeparability comlat::analyzeKeySeparability(const FormulaPtr &F) {
  KeySeparability KS;
  if (clauseIsKeySeparable(*F, KS))
    return KS;
  if (F->K == Formula::Kind::Or)
    for (const FormulaPtr &Kid : F->Kids)
      if (clauseIsKeySeparable(*Kid, KS))
        return KS;
  return KS;
}

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

struct CondCompiler::Build {
  CondProgram P;
  /// Structural key -> apply slot (dedup: one slot per distinct term, which
  /// is also what makes per-evaluation memoization sound).
  std::map<std::string, uint16_t> ApplySlotOf;
  unsigned Depth = 0;
  unsigned MaxDepth = 0;

  size_t emit(CondProgram::Insn I) {
    P.Code.push_back(I);
    return P.Code.size() - 1;
  }
  void push() {
    if (++Depth > MaxDepth)
      MaxDepth = Depth;
    assert(MaxDepth <= CondProgram::MaxStackDepth &&
           "condition exceeds the compiled evaluation stack");
  }
  void pop(unsigned N = 1) {
    assert(Depth >= N && "stack underflow during compilation");
    Depth -= N;
  }
  uint16_t pool(const Value &V) {
    // No dedup: Int and Real constants compare numerically equal but have
    // different arithmetic semantics, and pools are tiny anyway.
    P.Pool.push_back(V);
    return static_cast<uint16_t>(P.Pool.size() - 1);
  }
  uint16_t target() const {
    assert(P.Code.size() < UINT16_MAX && "program too large for branches");
    return static_cast<uint16_t>(P.Code.size());
  }
};

void CondCompiler::bindExternal(const TermPtr &T, uint16_t Slot) {
  // First binding wins: the gatekeeper binds log terms before s2-cache
  // terms, matching the interpreter resolvers' lookup precedence.
  External.emplace(T->key(), Slot);
  NumExt = std::max(NumExt, uint32_t(Slot) + 1);
}

void CondCompiler::lowerTerm(Build &B, const TermPtr &T) {
  // An externally bound term loads its slot whatever its shape.
  const auto ExtIt = External.find(T->key());
  if (ExtIt != External.end()) {
    B.emit({CondProgram::OpCode::PushExt, 0, ExtIt->second, 0});
    B.push();
    return;
  }
  switch (T->K) {
  case Term::Kind::Arg:
    B.emit({CondProgram::OpCode::PushArg, uint8_t(T->Inv),
            static_cast<uint16_t>(T->ArgIndex), 0});
    B.push();
    return;
  case Term::Kind::Ret:
    B.emit({CondProgram::OpCode::PushRet, uint8_t(T->Inv), 0, 0});
    B.push();
    return;
  case Term::Kind::Const:
    B.emit({CondProgram::OpCode::PushConst, 0, B.pool(T->Literal), 0});
    B.push();
    return;
  case Term::Kind::Apply: {
    for (const TermPtr &A : T->Args)
      lowerTerm(B, A);
    uint16_t Slot;
    const auto It = B.ApplySlotOf.find(T->key());
    if (It != B.ApplySlotOf.end()) {
      Slot = It->second;
    } else {
      assert(B.P.Applies.size() < CondProgram::MaxApplySlots &&
             "condition has too many distinct state-function applications");
      Slot = static_cast<uint16_t>(B.P.Applies.size());
      B.P.Applies.push_back({T, T->Fn, T->State,
                             static_cast<uint16_t>(T->Args.size())});
      B.ApplySlotOf.emplace(T->key(), Slot);
    }
    B.emit({CondProgram::OpCode::PushApply, 0, Slot,
            static_cast<uint16_t>(T->Args.size())});
    B.pop(static_cast<unsigned>(T->Args.size()));
    B.push();
    return;
  }
  case Term::Kind::Arith:
    lowerTerm(B, T->Lhs);
    lowerTerm(B, T->Rhs);
    B.emit({CondProgram::OpCode::Arith, uint8_t(T->Op), 0, 0});
    B.pop(2);
    B.push();
    return;
  }
  COMLAT_UNREACHABLE("bad term kind");
}

void CondCompiler::lowerFormula(Build &B, const FormulaPtr &F) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    B.emit({CondProgram::OpCode::PushConst, 0,
            B.pool(Value::boolean(F->isTrue())), 0});
    B.push();
    return;
  case Formula::Kind::Cmp:
    lowerTerm(B, F->Lhs);
    lowerTerm(B, F->Rhs);
    B.emit({CondProgram::OpCode::Cmp, uint8_t(F->Op), 0, 0});
    B.pop(2);
    B.push();
    return;
  case Formula::Kind::Not:
    lowerFormula(B, F->Kids[0]);
    B.emit({CondProgram::OpCode::Not, 0, 0, 0});
    return;
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    // Short-circuit chain: the first decisive kid's value stays on the
    // stack and control jumps to the continuation.
    assert(!F->Kids.empty() && "connective with no children");
    const CondProgram::OpCode Br = F->K == Formula::Kind::And
                                       ? CondProgram::OpCode::BrFalsePeek
                                       : CondProgram::OpCode::BrTruePeek;
    lowerFormula(B, F->Kids[0]);
    std::vector<size_t> Patches;
    for (size_t I = 1; I != F->Kids.size(); ++I) {
      Patches.push_back(B.emit({Br, 0, 0, 0}));
      B.emit({CondProgram::OpCode::Pop, 0, 0, 0});
      B.pop();
      lowerFormula(B, F->Kids[I]);
    }
    const uint16_t Cont = B.target();
    for (const size_t P : Patches)
      B.P.Code[P].B = Cont;
    return;
  }
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

CondProgram CondCompiler::compileFormula(const FormulaPtr &F) {
  const FormulaPtr S = simplify(F);
  Build B;
  B.P.NumExt = NumExt;
  lowerFormula(B, S);
  B.emit({CondProgram::OpCode::Halt, 0, 0, 0});
  B.P.MaxDepth = B.MaxDepth;
  if (S->isTrue())
    B.P.Always = 1;
  else if (S->isFalse())
    B.P.Always = 0;
  B.P.KeySep = analyzeKeySeparability(S);
  return std::move(B.P);
}

CondProgram CondCompiler::compileTerm(const TermPtr &T) {
  Build B;
  B.P.NumExt = NumExt;
  lowerTerm(B, T);
  B.emit({CondProgram::OpCode::Halt, 0, 0, 0});
  B.P.MaxDepth = B.MaxDepth;
  return std::move(B.P);
}
