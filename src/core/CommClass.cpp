//===- core/CommClass.cpp - First-class spec classification ----------------===//

#include "core/CommClass.h"
#include "core/Spec.h"

using namespace comlat;

const char *comlat::commClassName(CommClass C) {
  switch (C) {
  case CommClass::AlwaysCommutes:
    return "ALWAYS";
  case CommClass::ConditionallyCommutes:
    return "CONDITIONAL";
  case CommClass::NeverCommutes:
    return "NEVER";
  }
  COMLAT_UNREACHABLE("bad CommClass");
}

/// True when no Apply subterm of \p F reads abstract state (S1/S2).
static bool formulaStateFree(const FormulaPtr &F) {
  bool Free = true;
  forEachApply(F, [&Free](const Term &Apply) {
    if (Apply.State != StateRef::None)
      Free = false;
  });
  return Free;
}

SpecClassification::SpecClassification(const CommSpec &Spec) {
  const DataTypeSig &Sig = Spec.sig();
  const unsigned NumMethods = Sig.numMethods();
  assert(Spec.isComplete() && "classification requires a complete spec");
  assert(NumMethods <= 64 && "method masks are 64-bit");

  Pairs.resize(NumMethods);
  Methods.resize(NumMethods);
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    Pairs[M1].resize(NumMethods);
    for (MethodId M2 = 0; M2 != NumMethods; ++M2) {
      PairClass &P = Pairs[M1][M2];
      P.Cond = Spec.get(M1, M2);
      P.K = P.Cond->isTrue()    ? CommClass::AlwaysCommutes
            : P.Cond->isFalse() ? CommClass::NeverCommutes
                                : CommClass::ConditionallyCommutes;
      P.Impl = classifyCondition(P.Cond, Sig);
      if (P.Impl == ConditionClass::Simple)
        P.Simple = tryGetSimple(P.Cond, Sig);
      const KeySeparability KS = analyzeKeySeparability(P.Cond);
      P.Separable = KS.Separable;
      P.KeyArg1 = KS.Arg1;
      P.KeyArg2 = KS.Arg2;
      P.StateFree = formulaStateFree(P.Cond);
      Worst = worseClass(Worst, P.Impl);
      if (P.K == CommClass::AlwaysCommutes)
        Methods[M1].AlwaysMask |= uint64_t(1) << M2;
    }
  }

  // The privatization verdict. A method is a privatization *candidate*
  // when it mutates, returns nothing (a per-worker replica cannot produce
  // state-dependent return values), and unconditionally self-commutes.
  // Candidates join the privatized set greedily in method-id order, and
  // only if they unconditionally commute with every member already in it:
  // two privatized methods never see each other's conflict detection, so
  // the whole set must be pairwise AlwaysCommutes.
  for (MethodId M = 0; M != NumMethods; ++M) {
    MethodClass &MC = Methods[M];
    MC.Self = Pairs[M][M].K;
    const MethodInfo &Info = Sig.method(M);
    if (!Info.Mutating || Info.HasRet || MC.Self != CommClass::AlwaysCommutes)
      continue;
    if ((PrivMask & ~MC.AlwaysMask) == 0) {
      MC.Privatizable = true;
      PrivMask |= uint64_t(1) << M;
    }
  }

  // Blockers: non-privatizable methods that do not always commute with
  // some privatized method. Executing one must merge outstanding deltas.
  for (MethodId M = 0; M != NumMethods; ++M) {
    MethodClass &MC = Methods[M];
    if (MC.Privatizable)
      continue;
    MC.PrivBlocker = (PrivMask & ~MC.AlwaysMask) != 0;
    if (MC.PrivBlocker)
      BlockMask |= uint64_t(1) << M;
  }
}

std::string SpecClassification::str(const DataTypeSig &Sig) const {
  std::string Out;
  for (MethodId M = 0; M != Methods.size(); ++M) {
    const MethodClass &MC = Methods[M];
    Out += Sig.method(M).Name;
    Out += ": self=";
    Out += commClassName(MC.Self);
    if (MC.Privatizable)
      Out += " privatizable";
    if (MC.PrivBlocker)
      Out += " blocker";
    Out += "\n";
    for (MethodId N = 0; N != Methods.size(); ++N) {
      const PairClass &P = Pairs[M][N];
      Out += "  ~ " + Sig.method(N).Name + ": ";
      Out += commClassName(P.K);
      Out += " [";
      Out += conditionClassName(P.Impl);
      Out += "]";
      if (P.Separable)
        Out += " separable(" + std::to_string(P.KeyArg1) + "," +
               std::to_string(P.KeyArg2) + ")";
      if (!P.StateFree)
        Out += " state-reading";
      Out += "\n";
    }
  }
  return Out;
}
