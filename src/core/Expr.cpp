//===- core/Expr.cpp - AST for commutativity conditions -------------------===//

#include "core/Expr.h"

using namespace comlat;

//===----------------------------------------------------------------------===//
// Printing and structural keys
//===----------------------------------------------------------------------===//

static const char *arithOpName(ArithOp Op) {
  switch (Op) {
  case ArithOp::Add:
    return "+";
  case ArithOp::Sub:
    return "-";
  case ArithOp::Mul:
    return "*";
  case ArithOp::Div:
    return "/";
  }
  COMLAT_UNREACHABLE("bad arithmetic op");
}

static const char *cmpOpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return "==";
  case CmpOp::NE:
    return "!=";
  case CmpOp::LT:
    return "<";
  case CmpOp::LE:
    return "<=";
  case CmpOp::GT:
    return ">";
  case CmpOp::GE:
    return ">=";
  }
  COMLAT_UNREACHABLE("bad comparison op");
}

static const char *stateRefName(StateRef S) {
  switch (S) {
  case StateRef::None:
    return "";
  case StateRef::S1:
    return "s1";
  case StateRef::S2:
    return "s2";
  }
  COMLAT_UNREACHABLE("bad state ref");
}

std::string Term::str(const DataTypeSig *Sig) const {
  switch (K) {
  case Kind::Arg:
    return (Inv == InvIndex::Inv1 ? "v1[" : "v2[") + std::to_string(ArgIndex) +
           "]";
  case Kind::Ret:
    return Inv == InvIndex::Inv1 ? "r1" : "r2";
  case Kind::Const:
    return Literal.str();
  case Kind::Apply: {
    std::string Out =
        Sig ? Sig->stateFn(Fn).Name : ("f" + std::to_string(Fn));
    Out += "(";
    if (State != StateRef::None) {
      Out += stateRefName(State);
      if (!Args.empty())
        Out += ", ";
    }
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I]->str(Sig);
    }
    return Out + ")";
  }
  case Kind::Arith:
    return "(" + Lhs->str(Sig) + " " + arithOpName(Op) + " " +
           Rhs->str(Sig) + ")";
  }
  COMLAT_UNREACHABLE("bad term kind");
}

const std::string &Term::key() const {
  if (CachedKey.Text.empty())
    CachedKey.Text = buildKey();
  return CachedKey.Text;
}

std::string Term::buildKey() const {
  switch (K) {
  case Kind::Arg:
    return "a" + std::to_string(static_cast<int>(Inv)) + "." +
           std::to_string(ArgIndex);
  case Kind::Ret:
    return "r" + std::to_string(static_cast<int>(Inv));
  case Kind::Const:
    return "c" + Literal.str();
  case Kind::Apply: {
    std::string Out = "f" + std::to_string(Fn) + stateRefName(State) + "(";
    for (const TermPtr &A : Args)
      Out += A->key() + ",";
    return Out + ")";
  }
  case Kind::Arith:
    return std::string("(") + Lhs->key() + arithOpName(Op) + Rhs->key() + ")";
  }
  COMLAT_UNREACHABLE("bad term kind");
}

std::string Formula::str(const DataTypeSig *Sig) const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Cmp:
    return Lhs->str(Sig) + " " + cmpOpName(Op) + " " + Rhs->str(Sig);
  case Kind::Not:
    return "!(" + Kids[0]->str(Sig) + ")";
  case Kind::And:
  case Kind::Or: {
    const char *Sep = K == Kind::And ? " && " : " || ";
    std::string Out = "(";
    for (size_t I = 0; I != Kids.size(); ++I) {
      if (I != 0)
        Out += Sep;
      Out += Kids[I]->str(Sig);
    }
    return Out + ")";
  }
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

const std::string &Formula::key() const {
  if (CachedKey.Text.empty())
    CachedKey.Text = buildKey();
  return CachedKey.Text;
}

std::string Formula::buildKey() const {
  switch (K) {
  case Kind::True:
    return "T";
  case Kind::False:
    return "F";
  case Kind::Cmp:
    return "[" + Lhs->key() + cmpOpName(Op) + Rhs->key() + "]";
  case Kind::Not:
    return "!" + Kids[0]->key();
  case Kind::And:
  case Kind::Or: {
    std::string Out = K == Kind::And ? "&(" : "|(";
    for (const FormulaPtr &Kid : Kids)
      Out += Kid->key() + ";";
    return Out + ")";
  }
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

bool comlat::structurallyEqual(const TermPtr &A, const TermPtr &B) {
  return A == B || A->key() == B->key();
}

bool comlat::structurallyEqual(const FormulaPtr &A, const FormulaPtr &B) {
  return A == B || A->key() == B->key();
}

//===----------------------------------------------------------------------===//
// Mirroring
//===----------------------------------------------------------------------===//

TermPtr comlat::mirrorTerm(const TermPtr &T) {
  auto Copy = std::make_shared<Term>(*T);
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
    Copy->Inv = otherInv(T->Inv);
    break;
  case Term::Kind::Const:
    break;
  case Term::Kind::Apply:
    if (T->State == StateRef::S1)
      Copy->State = StateRef::S2;
    else if (T->State == StateRef::S2)
      Copy->State = StateRef::S1;
    Copy->Args.clear();
    for (const TermPtr &A : T->Args)
      Copy->Args.push_back(mirrorTerm(A));
    break;
  case Term::Kind::Arith:
    Copy->Lhs = mirrorTerm(T->Lhs);
    Copy->Rhs = mirrorTerm(T->Rhs);
    break;
  }
  return Copy;
}

FormulaPtr comlat::mirrorFormula(const FormulaPtr &F) {
  auto Copy = std::make_shared<Formula>(*F);
  if (F->K == Formula::Kind::Cmp) {
    Copy->Lhs = mirrorTerm(F->Lhs);
    Copy->Rhs = mirrorTerm(F->Rhs);
    return Copy;
  }
  Copy->Kids.clear();
  for (const FormulaPtr &Kid : F->Kids)
    Copy->Kids.push_back(mirrorFormula(Kid));
  return Copy;
}

//===----------------------------------------------------------------------===//
// Traversal helpers
//===----------------------------------------------------------------------===//

static void forEachApplyTerm(const TermPtr &T,
                             const std::function<void(const Term &)> &Visit) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
  case Term::Kind::Const:
    return;
  case Term::Kind::Apply:
    Visit(*T);
    for (const TermPtr &A : T->Args)
      forEachApplyTerm(A, Visit);
    return;
  case Term::Kind::Arith:
    forEachApplyTerm(T->Lhs, Visit);
    forEachApplyTerm(T->Rhs, Visit);
    return;
  }
  COMLAT_UNREACHABLE("bad term kind");
}

void comlat::forEachApply(const FormulaPtr &F,
                          const std::function<void(const Term &)> &Visit) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return;
  case Formula::Kind::Cmp:
    forEachApplyTerm(F->Lhs, Visit);
    forEachApplyTerm(F->Rhs, Visit);
    return;
  case Formula::Kind::Not:
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      forEachApply(Kid, Visit);
    return;
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

bool comlat::termMentionsInv(const TermPtr &T, InvIndex Inv) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
    return T->Inv == Inv;
  case Term::Kind::Const:
    return false;
  case Term::Kind::Apply:
    for (const TermPtr &A : T->Args)
      if (termMentionsInv(A, Inv))
        return true;
    return false;
  case Term::Kind::Arith:
    return termMentionsInv(T->Lhs, Inv) || termMentionsInv(T->Rhs, Inv);
  }
  COMLAT_UNREACHABLE("bad term kind");
}

bool comlat::termMentionsRet(const TermPtr &T, InvIndex Inv) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Const:
    return false;
  case Term::Kind::Ret:
    return T->Inv == Inv;
  case Term::Kind::Apply:
    for (const TermPtr &A : T->Args)
      if (termMentionsRet(A, Inv))
        return true;
    return false;
  case Term::Kind::Arith:
    return termMentionsRet(T->Lhs, Inv) || termMentionsRet(T->Rhs, Inv);
  }
  COMLAT_UNREACHABLE("bad term kind");
}

bool comlat::formulaMentionsRet(const FormulaPtr &F, InvIndex Inv) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return false;
  case Formula::Kind::Cmp:
    return termMentionsRet(F->Lhs, Inv) || termMentionsRet(F->Rhs, Inv);
  case Formula::Kind::Not:
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      if (formulaMentionsRet(Kid, Inv))
        return true;
    return false;
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

//===----------------------------------------------------------------------===//
// DSL factories
//===----------------------------------------------------------------------===//

namespace comlat {
namespace dsl {

TermPtr arg(InvIndex Inv, unsigned I) {
  auto T = std::make_shared<Term>();
  T->K = Term::Kind::Arg;
  T->Inv = Inv;
  T->ArgIndex = I;
  return T;
}

TermPtr arg1(unsigned I) { return arg(InvIndex::Inv1, I); }
TermPtr arg2(unsigned I) { return arg(InvIndex::Inv2, I); }

TermPtr ret(InvIndex Inv) {
  auto T = std::make_shared<Term>();
  T->K = Term::Kind::Ret;
  T->Inv = Inv;
  return T;
}

TermPtr ret1() { return ret(InvIndex::Inv1); }
TermPtr ret2() { return ret(InvIndex::Inv2); }

TermPtr cst(Value V) {
  auto T = std::make_shared<Term>();
  T->K = Term::Kind::Const;
  T->Literal = V;
  return T;
}

TermPtr cst(bool B) { return cst(Value::boolean(B)); }
TermPtr cst(int64_t I) { return cst(Value::integer(I)); }
TermPtr cst(int I) { return cst(Value::integer(I)); }
TermPtr cst(double D) { return cst(Value::real(D)); }

TermPtr apply(StateFnId Fn, StateRef State, std::vector<TermPtr> Args) {
  auto T = std::make_shared<Term>();
  T->K = Term::Kind::Apply;
  T->Fn = Fn;
  T->State = State;
  T->Args = std::move(Args);
  return T;
}

TermPtr arith(ArithOp Op, TermPtr Lhs, TermPtr Rhs) {
  auto T = std::make_shared<Term>();
  T->K = Term::Kind::Arith;
  T->Op = Op;
  T->Lhs = std::move(Lhs);
  T->Rhs = std::move(Rhs);
  return T;
}

FormulaPtr cmp(CmpOp Op, TermPtr Lhs, TermPtr Rhs) {
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::Cmp;
  F->Op = Op;
  F->Lhs = std::move(Lhs);
  F->Rhs = std::move(Rhs);
  return F;
}

FormulaPtr eq(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::EQ, std::move(Lhs), std::move(Rhs));
}
FormulaPtr ne(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::NE, std::move(Lhs), std::move(Rhs));
}
FormulaPtr lt(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::LT, std::move(Lhs), std::move(Rhs));
}
FormulaPtr le(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::LE, std::move(Lhs), std::move(Rhs));
}
FormulaPtr gt(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::GT, std::move(Lhs), std::move(Rhs));
}
FormulaPtr ge(TermPtr Lhs, TermPtr Rhs) {
  return cmp(CmpOp::GE, std::move(Lhs), std::move(Rhs));
}

FormulaPtr top() {
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::True;
  return F;
}

FormulaPtr bottom() {
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::False;
  return F;
}

FormulaPtr negate(FormulaPtr Inner) {
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::Not;
  F->Kids.push_back(std::move(Inner));
  return F;
}

FormulaPtr conj(std::vector<FormulaPtr> Kids) {
  assert(!Kids.empty() && "empty conjunction; use top()");
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::And;
  F->Kids = std::move(Kids);
  return F;
}

FormulaPtr disj(std::vector<FormulaPtr> Kids) {
  assert(!Kids.empty() && "empty disjunction; use bottom()");
  auto F = std::make_shared<Formula>();
  F->K = Formula::Kind::Or;
  F->Kids = std::move(Kids);
  return F;
}

FormulaPtr conj(FormulaPtr A, FormulaPtr B) {
  return conj({std::move(A), std::move(B)});
}
FormulaPtr disj(FormulaPtr A, FormulaPtr B) {
  return disj({std::move(A), std::move(B)});
}
FormulaPtr conj(FormulaPtr A, FormulaPtr B, FormulaPtr C) {
  return conj({std::move(A), std::move(B), std::move(C)});
}
FormulaPtr disj(FormulaPtr A, FormulaPtr B, FormulaPtr C) {
  return disj({std::move(A), std::move(B), std::move(C)});
}

} // namespace dsl
} // namespace comlat
