//===- core/Spec.cpp - Commutativity specifications ------------------------===//

#include "core/Spec.h"
#include "core/Simplify.h"

using namespace comlat;

CommSpec::CommSpec(const DataTypeSig *Sig, std::string Name)
    : Sig(Sig), Name(std::move(Name)) {
  assert(Sig && "spec requires a signature");
}

void CommSpec::set(MethodId M1, MethodId M2, FormulaPtr F) {
  assert(M1 < Sig->numMethods() && M2 < Sig->numMethods() && "bad method id");
  F = simplify(F);
  {
    std::lock_guard<std::mutex> Guard(Cache.Mu);
    Cache.C.reset();
  }
  if (M1 <= M2)
    Conditions[{M1, M2}] = std::move(F);
  else
    Conditions[{M2, M1}] = simplify(mirrorFormula(F));
}

FormulaPtr CommSpec::get(MethodId M1, MethodId M2) const {
  const bool Swap = M1 > M2;
  const auto It =
      Conditions.find(Swap ? std::make_pair(M2, M1) : std::make_pair(M1, M2));
  if (It == Conditions.end())
    COMLAT_UNREACHABLE("condition requested for an undefined method pair");
  return Swap ? simplify(mirrorFormula(It->second)) : It->second;
}

bool CommSpec::isComplete() const {
  for (MethodId M1 = 0; M1 != Sig->numMethods(); ++M1)
    for (MethodId M2 = M1; M2 != Sig->numMethods(); ++M2)
      if (!Conditions.count({M1, M2}))
        return false;
  return true;
}

ConditionClass CommSpec::classify() const {
  return classification().worstClass();
}

const SpecClassification &CommSpec::classification() const {
  std::lock_guard<std::mutex> Guard(Cache.Mu);
  if (!Cache.C)
    Cache.C = std::make_unique<SpecClassification>(*this);
  return *Cache.C;
}

std::string CommSpec::str() const {
  std::string Out = "spec " + Name + " for " + Sig->name() + " [" +
                    conditionClassName(classify()) + "]\n";
  for (const auto &Entry : Conditions) {
    Out += "  " + Sig->method(Entry.first.first).Name + " ~ " +
           Sig->method(Entry.first.second).Name + " : " +
           Entry.second->str(Sig) + "\n";
  }
  return Out;
}
