//===- core/Expr.h - AST for commutativity conditions -----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An immutable expression AST for commutativity conditions, covering the
/// full logic L1 of Fig. 1 in the paper:
///
/// \code
///   S  := s1 | s2                        abstract states
///   V  := v1 | v2 | r1 | r2 | Z | B      arguments, returns, constants
///   F  := f(S, V, V, ...)                state-function application
///   O  := + | - | * | /                  arithmetic
///   P  := V | F | P O P                  terms
///   C  := P (= | != | < | <= | > | >=) P
///       | (C) | !C | C && C | C || C     formulas
/// \endcode
///
/// The restricted logics L2 (SIMPLE conditions, Fig. 6) and L3
/// (ONLINE-CHECKABLE conditions, Fig. 9) are syntactic subsets recognized by
/// core/Classify.h. Terms and formulas are shared immutable trees; building
/// happens through the factory helpers in namespace comlat::dsl, e.g.:
///
/// \code
///   using namespace comlat::dsl;
///   // add(a)/r1 commutes with add(b)/r2 iff
///   //   a != b  or  (r1 = false and r2 = false)
///   FormulaPtr F = disj(ne(arg1(0), arg2(0)),
///                       conj(eq(ret1(), cst(false)),
///                            eq(ret2(), cst(false))));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_EXPR_H
#define COMLAT_CORE_EXPR_H

#include "core/MethodSig.h"
#include "core/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace comlat {

struct Term;
struct Formula;
using TermPtr = std::shared_ptr<const Term>;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A lazily filled string cache that intentionally does not survive
/// copies: node copies (e.g. mirroring) change structure, so a copied
/// cache would be stale.
class KeyCache {
public:
  KeyCache() = default;
  KeyCache(const KeyCache &) {}
  KeyCache &operator=(const KeyCache &) { return *this; }

  std::string Text;
};

/// Which of the two method invocations a term slot refers to.
enum class InvIndex : uint8_t { Inv1 = 1, Inv2 = 2 };

/// Returns the other invocation index.
inline InvIndex otherInv(InvIndex I) {
  return I == InvIndex::Inv1 ? InvIndex::Inv2 : InvIndex::Inv1;
}

/// Which abstract state a state-function application reads.
enum class StateRef : uint8_t {
  None, ///< Pure function: no state dependence (e.g. dist).
  S1,   ///< The state the *first* invocation executed in.
  S2    ///< The state the *second* invocation executed in.
};

/// Arithmetic operators of L1.
enum class ArithOp : uint8_t { Add, Sub, Mul, Div };

/// Comparison operators of L1 (both equality and arithmetic connectives).
enum class CmpOp : uint8_t { EQ, NE, LT, LE, GT, GE };

/// A term (the P production): a value slot, constant, state-function
/// application, or arithmetic combination.
struct Term {
  enum class Kind : uint8_t { Arg, Ret, Const, Apply, Arith };

  Kind K;

  // Arg / Ret.
  InvIndex Inv = InvIndex::Inv1;
  unsigned ArgIndex = 0; // Arg only.

  // Const.
  Value Literal;

  // Apply.
  StateFnId Fn = 0;
  StateRef State = StateRef::None;
  std::vector<TermPtr> Args;

  // Arith.
  ArithOp Op = ArithOp::Add;
  TermPtr Lhs, Rhs;

  /// Renders the term, e.g. "rep(s1, v2[0])".
  std::string str(const DataTypeSig *Sig = nullptr) const;

  /// A stable structural key; equal keys iff structurally equal terms.
  /// Cached after the first call: warm it from one thread (the gatekeeper
  /// constructor does) before sharing a term across threads.
  const std::string &key() const;

private:
  std::string buildKey() const;

  mutable KeyCache CachedKey;
};

/// A formula (the C production).
struct Formula {
  enum class Kind : uint8_t { True, False, Cmp, Not, And, Or };

  Kind K;

  // Cmp.
  CmpOp Op = CmpOp::EQ;
  TermPtr Lhs, Rhs;

  // Not / And / Or children (Not has exactly one).
  std::vector<FormulaPtr> Kids;

  bool isTrue() const { return K == Kind::True; }
  bool isFalse() const { return K == Kind::False; }

  /// Renders the formula, e.g. "(v1[0] != v2[0]) || (r1 == false)".
  std::string str(const DataTypeSig *Sig = nullptr) const;

  /// A stable structural key; equal keys iff structurally equal formulas.
  /// Cached after the first call (see Term::key about thread warm-up).
  const std::string &key() const;

private:
  std::string buildKey() const;

  mutable KeyCache CachedKey;
};

/// Structural equality.
bool structurallyEqual(const TermPtr &A, const TermPtr &B);
bool structurallyEqual(const FormulaPtr &A, const FormulaPtr &B);

/// Produces the mirrored term/formula: swaps the roles of the two
/// invocations (v1 <-> v2, r1 <-> r2, s1 <-> s2). Mirroring converts the
/// condition f_{m1,m2} into f_{m2,m1} (the paper keeps specifications
/// symmetric, §2.4 fn. 5; we store one orientation and mirror on demand).
TermPtr mirrorTerm(const TermPtr &T);
FormulaPtr mirrorFormula(const FormulaPtr &F);

/// Calls \p VisitApply for every Apply node in the formula (pre-order).
void forEachApply(const FormulaPtr &F,
                  const std::function<void(const Term &)> &VisitApply);

/// True if any term slot in \p T (recursively) refers to invocation \p Inv.
bool termMentionsInv(const TermPtr &T, InvIndex Inv);

/// True if the term mentions the return value of \p Inv.
bool termMentionsRet(const TermPtr &T, InvIndex Inv);

/// True if the formula mentions the return value of \p Inv anywhere.
bool formulaMentionsRet(const FormulaPtr &F, InvIndex Inv);

/// Factory helpers forming a tiny DSL for writing specifications.
namespace dsl {

/// Argument \p I of the first invocation (v1).
TermPtr arg1(unsigned I);
/// Argument \p I of the second invocation (v2).
TermPtr arg2(unsigned I);
/// Argument \p I of invocation \p Inv.
TermPtr arg(InvIndex Inv, unsigned I);
/// Return value of the first invocation (r1).
TermPtr ret1();
/// Return value of the second invocation (r2).
TermPtr ret2();
/// Return value of invocation \p Inv.
TermPtr ret(InvIndex Inv);
/// Constant term.
TermPtr cst(Value V);
TermPtr cst(bool B);
TermPtr cst(int64_t I);
TermPtr cst(int I);
TermPtr cst(double D);
/// State-function application f(State, Args...).
TermPtr apply(StateFnId Fn, StateRef State, std::vector<TermPtr> Args);
/// Arithmetic combination.
TermPtr arith(ArithOp Op, TermPtr Lhs, TermPtr Rhs);

/// Comparisons.
FormulaPtr cmp(CmpOp Op, TermPtr Lhs, TermPtr Rhs);
FormulaPtr eq(TermPtr Lhs, TermPtr Rhs);
FormulaPtr ne(TermPtr Lhs, TermPtr Rhs);
FormulaPtr lt(TermPtr Lhs, TermPtr Rhs);
FormulaPtr le(TermPtr Lhs, TermPtr Rhs);
FormulaPtr gt(TermPtr Lhs, TermPtr Rhs);
FormulaPtr ge(TermPtr Lhs, TermPtr Rhs);

/// Boolean constants and connectives. Variadic conj/disj flatten nothing;
/// use core/Simplify.h to normalize.
FormulaPtr top();
FormulaPtr bottom();
FormulaPtr negate(FormulaPtr F);
FormulaPtr conj(std::vector<FormulaPtr> Kids);
FormulaPtr disj(std::vector<FormulaPtr> Kids);
FormulaPtr conj(FormulaPtr A, FormulaPtr B);
FormulaPtr disj(FormulaPtr A, FormulaPtr B);
FormulaPtr conj(FormulaPtr A, FormulaPtr B, FormulaPtr C);
FormulaPtr disj(FormulaPtr A, FormulaPtr B, FormulaPtr C);

} // namespace dsl

} // namespace comlat

#endif // COMLAT_CORE_EXPR_H
