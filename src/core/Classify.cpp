//===- core/Classify.cpp - SIMPLE / ONLINE-CHECKABLE / general -------------===//

#include "core/Classify.h"
#include "core/Simplify.h"

#include <algorithm>
#include <set>

using namespace comlat;

ConditionClass comlat::worseClass(ConditionClass A, ConditionClass B) {
  return static_cast<uint8_t>(A) >= static_cast<uint8_t>(B) ? A : B;
}

const char *comlat::conditionClassName(ConditionClass C) {
  switch (C) {
  case ConditionClass::Simple:
    return "SIMPLE";
  case ConditionClass::OnlineCheckable:
    return "ONLINE-CHECKABLE";
  case ConditionClass::General:
    return "GENERAL";
  }
  COMLAT_UNREACHABLE("bad condition class");
}

bool SimpleClause::operator<(const SimpleClause &O) const {
  if (!(Lhs == O.Lhs))
    return Lhs < O.Lhs;
  if (!(Rhs == O.Rhs))
    return Rhs < O.Rhs;
  // std::optional comparison: nullopt sorts first.
  return KeyFn < O.KeyFn;
}

namespace {
/// One side of a candidate SIMPLE clause: which invocation, which slot, and
/// an optional pure unary key function wrapped around it.
struct ClauseSide {
  InvIndex Inv;
  Slot S;
  std::optional<StateFnId> KeyFn;
};
} // namespace

/// Matches `slot` or `k(slot)` with k pure and unary.
static std::optional<ClauseSide> matchSide(const TermPtr &T,
                                           const DataTypeSig &Sig) {
  const Term *Inner = T.get();
  std::optional<StateFnId> KeyFn;
  if (T->K == Term::Kind::Apply) {
    if (T->State != StateRef::None || T->Args.size() != 1 ||
        !Sig.stateFn(T->Fn).Pure)
      return std::nullopt;
    KeyFn = T->Fn;
    Inner = T->Args[0].get();
  }
  ClauseSide Side;
  Side.KeyFn = KeyFn;
  if (Inner->K == Term::Kind::Arg) {
    Side.Inv = Inner->Inv;
    Side.S = Slot{false, Inner->ArgIndex};
    return Side;
  }
  if (Inner->K == Term::Kind::Ret) {
    Side.Inv = Inner->Inv;
    Side.S = Slot{true, 0};
    return Side;
  }
  return std::nullopt;
}

/// Matches one `k(x) != k(y)` conjunct with x, y from different invocations.
static std::optional<SimpleClause> matchClause(const FormulaPtr &F,
                                               const DataTypeSig &Sig) {
  if (F->K != Formula::Kind::Cmp || F->Op != CmpOp::NE)
    return std::nullopt;
  const std::optional<ClauseSide> L = matchSide(F->Lhs, Sig);
  const std::optional<ClauseSide> R = matchSide(F->Rhs, Sig);
  if (!L || !R)
    return std::nullopt;
  if (L->Inv == R->Inv)
    return std::nullopt; // Both sides from the same invocation.
  if (L->KeyFn != R->KeyFn)
    return std::nullopt; // Both sides must share the key function.
  SimpleClause Clause;
  Clause.KeyFn = L->KeyFn;
  if (L->Inv == InvIndex::Inv1) {
    Clause.Lhs = L->S;
    Clause.Rhs = R->S;
  } else {
    Clause.Lhs = R->S;
    Clause.Rhs = L->S;
  }
  return Clause;
}

std::optional<SimpleForm> comlat::tryGetSimple(const FormulaPtr &Raw,
                                               const DataTypeSig &Sig) {
  const FormulaPtr F = simplify(Raw);
  SimpleForm Form;
  if (F->isFalse()) {
    Form.K = SimpleForm::Kind::False;
    return Form;
  }
  if (F->isTrue()) {
    Form.K = SimpleForm::Kind::True;
    return Form;
  }
  std::vector<FormulaPtr> Conjuncts;
  if (F->K == Formula::Kind::And)
    Conjuncts = F->Kids;
  else
    Conjuncts.push_back(F);
  std::set<SimpleClause> Clauses;
  for (const FormulaPtr &Conjunct : Conjuncts) {
    const std::optional<SimpleClause> Clause = matchClause(Conjunct, Sig);
    if (!Clause)
      return std::nullopt;
    Clauses.insert(*Clause);
  }
  Form.K = SimpleForm::Kind::Clauses;
  Form.Clauses.assign(Clauses.begin(), Clauses.end());
  return Form;
}

bool comlat::isOnlineCheckable(const FormulaPtr &F) {
  bool Ok = true;
  forEachApply(F, [&Ok](const Term &Apply) {
    if (Apply.State != StateRef::S1)
      return;
    for (const TermPtr &Arg : Apply.Args)
      if (termMentionsInv(Arg, InvIndex::Inv2))
        Ok = false;
  });
  return Ok;
}

ConditionClass comlat::classifyCondition(const FormulaPtr &F,
                                         const DataTypeSig &Sig) {
  if (tryGetSimple(F, Sig))
    return ConditionClass::Simple;
  if (isOnlineCheckable(F))
    return ConditionClass::OnlineCheckable;
  return ConditionClass::General;
}

/// True if the apply term can be evaluated when the first invocation runs:
/// it does not read s2 and mentions no second-invocation values.
static bool isLoggableApply(const Term &Apply) {
  if (Apply.State == StateRef::S2)
    return false;
  for (const TermPtr &Arg : Apply.Args)
    if (termMentionsInv(Arg, InvIndex::Inv2))
      return false;
  return true;
}

static void collectFromTerm(const TermPtr &T, bool WantS2,
                            std::set<std::string> &Seen,
                            std::vector<TermPtr> &Out) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
  case Term::Kind::Const:
    return;
  case Term::Kind::Apply: {
    const bool Match = WantS2 ? (T->State == StateRef::S2)
                              : isLoggableApply(*T);
    if (Match) {
      if (WantS2)
        assert(!termMentionsRet(T, InvIndex::Inv2) &&
               "s2-application may not depend on r2: it must be evaluated "
               "before the second invocation executes");
      if (Seen.insert(T->key()).second)
        Out.push_back(T);
      return; // Maximal subterm: do not descend.
    }
    for (const TermPtr &A : T->Args)
      collectFromTerm(A, WantS2, Seen, Out);
    return;
  }
  case Term::Kind::Arith:
    collectFromTerm(T->Lhs, WantS2, Seen, Out);
    collectFromTerm(T->Rhs, WantS2, Seen, Out);
    return;
  }
  COMLAT_UNREACHABLE("bad term kind");
}

static void collectFromFormula(const FormulaPtr &F, bool WantS2,
                               std::set<std::string> &Seen,
                               std::vector<TermPtr> &Out) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return;
  case Formula::Kind::Cmp:
    collectFromTerm(F->Lhs, WantS2, Seen, Out);
    collectFromTerm(F->Rhs, WantS2, Seen, Out);
    return;
  case Formula::Kind::Not:
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const FormulaPtr &Kid : F->Kids)
      collectFromFormula(Kid, WantS2, Seen, Out);
    return;
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

std::vector<TermPtr> comlat::collectLoggableApplies(const FormulaPtr &F) {
  std::set<std::string> Seen;
  std::vector<TermPtr> Out;
  collectFromFormula(F, /*WantS2=*/false, Seen, Out);
  return Out;
}

std::vector<TermPtr> comlat::collectS2Applies(const FormulaPtr &F) {
  std::set<std::string> Seen;
  std::vector<TermPtr> Out;
  collectFromFormula(F, /*WantS2=*/true, Seen, Out);
  return Out;
}
