//===- core/CondIR.h - Compiled commutativity conditions --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, allocation-free evaluation form for commutativity conditions.
///
/// The tree interpreter (core/Eval.h) walks the shared-pointer Formula/Term
/// AST on every check; a gatekeeper does that inside its critical section,
/// so the most permissive lattice points pay the highest per-check cost —
/// exactly the overhead axis of the paper's Table 2. CondCompiler lowers a
/// FormulaPtr (after core/Simplify.h canonicalization and constant folding)
/// into a CondProgram: a postfix instruction sequence with short-circuit
/// branches, a constant pool, pre-resolved argument/return slots, and two
/// kinds of state-function slots:
///
///  * *external* slots — Apply terms whose values the caller supplies per
///    evaluation (a forward gatekeeper binds its invocation log and its
///    phase-1 s2-cache here, replacing the string-keyed map lookups of the
///    interpreter with indexed loads);
///  * *apply* slots — remaining Apply terms, resolved through the ordinary
///    ApplyResolver policy and memoized for the duration of one evaluation.
///
/// Evaluation uses a fixed-size value stack and performs no heap allocation
/// unless an apply slot actually fires. The tree interpreter remains the
/// reference semantics: CondProgram::evalBool must agree with evalFormula on
/// every input (SpecValidator's differential mode and the CondIR fuzz test
/// enforce this).
///
/// The compiler also derives a *key footprint*: whether the condition is
/// key-separable — contains a disjunct `m1.argI != m2.argJ` (the shape of
/// the set lattice's `x != y` clauses), so invocations with different keys
/// trivially commute. The striped gatekeeper admission path is built on
/// this metadata (runtime/Gatekeeper.h).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_CONDIR_H
#define COMLAT_CORE_CONDIR_H

#include "core/Eval.h"
#include "core/Expr.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace comlat {

/// Key footprint of a condition: when Separable, the condition contains a
/// top-level disjunct `m1.arg[Arg1] != m2.arg[Arg2]`, so two invocations
/// whose key arguments differ commute regardless of everything else. Only
/// plain argument slots qualify — a key-function clause `k(x) != k(y)`
/// separates key *classes*, not keys, and is deliberately not recognized.
struct KeySeparability {
  bool Separable = false;
  unsigned Arg1 = 0; ///< Key argument index of the first invocation.
  unsigned Arg2 = 0; ///< Key argument index of the second invocation.
};

/// A compiled condition (or term): flat postfix code over a value stack.
class CondProgram {
public:
  enum class OpCode : uint8_t {
    PushArg,     ///< Push invocation Sub's argument A.
    PushRet,     ///< Push invocation Sub's return value.
    PushConst,   ///< Push constant-pool entry A.
    PushExt,     ///< Push externally supplied slot A.
    PushApply,   ///< Pop B argument values, resolve/memoize apply slot A.
    Arith,       ///< Pop two values, push arithmetic result (op Sub).
    Cmp,         ///< Pop two values, push boolean comparison (op Sub).
    Not,         ///< Pop one boolean, push its negation.
    BrFalsePeek, ///< Jump to B when the stack top is false (value kept).
    BrTruePeek,  ///< Jump to B when the stack top is true (value kept).
    Pop,         ///< Discard the stack top.
    Halt         ///< Stop; the stack top is the result.
  };

  /// One 8-byte instruction. Sub carries the InvIndex / ArithOp / CmpOp;
  /// A is a pool/slot index; B is a branch target or apply arity.
  struct Insn {
    OpCode Op;
    uint8_t Sub = 0;
    uint16_t A = 0;
    uint16_t B = 0;
  };

  /// One unresolved state-function application: resolved through the
  /// caller's ApplyResolver and memoized per evaluation.
  struct ApplySlot {
    TermPtr T; ///< The original Apply term (handed to the resolver).
    StateFnId Fn = 0;
    StateRef State = StateRef::None;
    uint16_t NumArgs = 0;
  };

  /// Hard limits; compilation asserts them. Conditions are tiny static
  /// data, so fixed scratch beats dynamic allocation on the hot path.
  static constexpr unsigned MaxStackDepth = 64;
  static constexpr unsigned MaxApplySlots = 16;

  /// One invocation's values, borrowed from caller storage; no copies.
  struct Frame {
    const Value *Args = nullptr;
    uint32_t NumArgs = 0;
    const Value *Ret = nullptr;

    Frame() = default;
    Frame(const Value *Args, uint32_t NumArgs, const Value *Ret)
        : Args(Args), NumArgs(NumArgs), Ret(Ret) {}
    /// Borrows an Invocation's argument vector and return slot.
    explicit Frame(const Invocation &I)
        : Args(I.Args.data()), NumArgs(static_cast<uint32_t>(I.Args.size())),
          Ret(&I.Ret) {}
  };

  /// Everything one evaluation reads. Ext supplies the external slots the
  /// program was compiled against (indexed 0..NumExt-1); Resolver handles
  /// apply slots and may be null when the program has none.
  struct Inputs {
    Frame Inv1;
    Frame Inv2;
    const Value *Ext = nullptr;
    uint32_t NumExt = 0;
    ApplyResolver *Resolver = nullptr;
  };

  /// Evaluates a compiled formula to its truth value.
  bool evalBool(const Inputs &In) const { return eval(In).asBool(); }

  /// Evaluates a compiled term (or formula) to its value.
  Value eval(const Inputs &In) const;

  /// Constant-folded outcomes (set when simplification reduced the formula
  /// to a boolean constant; the program is still executable).
  bool alwaysTrue() const { return Always == 1; }
  bool alwaysFalse() const { return Always == 0; }

  const std::vector<Insn> &insns() const { return Code; }
  const std::vector<Value> &constants() const { return Pool; }
  const std::vector<ApplySlot> &applySlots() const { return Applies; }

  /// Number of external slots the program may load (PushExt indices are
  /// dense in [0, numExternalSlots())). Callers bind more than the program
  /// uses; only the maximum referenced index matters.
  uint32_t numExternalSlots() const { return NumExt; }

  /// True when any apply slot reads abstract state (StateRef::S1/S2); such
  /// programs cannot run on the striped admission path, which has no
  /// single historical state to resolve them against.
  bool usesStateApplies() const {
    for (const ApplySlot &S : Applies)
      if (S.State != StateRef::None)
        return true;
    return false;
  }

  const KeySeparability &keySeparability() const { return KeySep; }

  /// Renders the program for tests and debugging, one instruction per
  /// line, e.g. "  2: cmp ne".
  std::string disassemble(const DataTypeSig *Sig = nullptr) const;

private:
  friend class CondCompiler;

  std::vector<Insn> Code;
  std::vector<Value> Pool;
  std::vector<ApplySlot> Applies;
  uint32_t NumExt = 0;
  uint32_t MaxDepth = 0;
  int8_t Always = -1; ///< -1 unknown, 0 constant-false, 1 constant-true.
  KeySeparability KeySep;
};

/// Compiles formulas and terms to CondPrograms. Bind external terms first
/// (in caller slot order), then compile; the compiler replaces every
/// structurally-equal occurrence of a bound term with an indexed load.
/// Earlier bindings win when the same term is bound twice, mirroring the
/// log-before-cache precedence of the gatekeeper's interpreter resolvers.
class CondCompiler {
public:
  /// Binds \p T (typically an Apply term: a log entry or an s2-cache
  /// entry) to external slot \p Slot.
  void bindExternal(const TermPtr &T, uint16_t Slot);

  /// Compiles \p F: simplifies (constant folding, canonicalization), then
  /// lowers. The returned program is self-contained and immutable.
  CondProgram compileFormula(const FormulaPtr &F);

  /// Compiles a bare term, e.g. an abstract-lock key expression.
  CondProgram compileTerm(const TermPtr &T);

private:
  struct Build;
  void lowerFormula(Build &B, const FormulaPtr &F);
  void lowerTerm(Build &B, const TermPtr &T);

  /// Structural key -> external slot, first binding wins.
  std::map<std::string, uint16_t> External;
  uint32_t NumExt = 0;
};

/// Derives the key footprint of \p F (see KeySeparability). Analyzes the
/// formula as given; callers normally pass a simplified formula.
KeySeparability analyzeKeySeparability(const FormulaPtr &F);

} // namespace comlat

#endif // COMLAT_CORE_CONDIR_H
