//===- core/Lattice.h - The commutativity lattice ---------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations on the lattice of commutativity specifications (§2.4):
/// the implication order f1 <= f2 iff f1 => f2, pointwise join/meet, the
/// bottom element (a single global lock once implemented), and the
/// disciplined strengthening transforms of §4:
///
///  * simpleUnderApprox: the largest SIMPLE condition below a given
///    condition that is reachable by dropping non-SIMPLE disjuncts; this
///    derives the strengthened set specification of Fig. 3 from the
///    precise one of Fig. 2 mechanically.
///  * partitionSpec: the lock-coarsening transform of §4.2, replacing each
///    clause x != y with part(x) != part(y).
///
/// Deciding implication is exact on the SIMPLE fragment. Outside it we use
/// sound syntactic rules plus randomized refutation over uninterpreted
/// state functions: a found counterexample proves "No"; exhausted trials
/// yield "Unknown" (never a wrong "Yes").
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_LATTICE_H
#define COMLAT_CORE_LATTICE_H

#include "core/Spec.h"

namespace comlat {

/// Three-valued answer for undecidable-in-general queries.
enum class Tri : uint8_t { Yes, No, Unknown };

/// Decides whether \p F1 implies \p F2 (i.e. F1 <= F2 in the condition
/// lattice). \p Trials bounds the randomized refutation effort.
Tri implies(const FormulaPtr &F1, const FormulaPtr &F2,
            const DataTypeSig &Sig, unsigned Trials = 2048,
            uint64_t Seed = 0x1eaf);

/// Decides the specification order: A <= B iff every condition of A implies
/// the corresponding condition of B. Returns No if any pair refutes,
/// Unknown if undecided, Yes otherwise.
Tri specLeq(const CommSpec &A, const CommSpec &B, unsigned Trials = 2048,
            uint64_t Seed = 0x1eaf);

/// Pointwise join (least upper bound: weaker, more permissive spec).
CommSpec specJoin(const CommSpec &A, const CommSpec &B, std::string Name);

/// Pointwise meet (greatest lower bound: stronger, more conservative spec).
CommSpec specMeet(const CommSpec &A, const CommSpec &B, std::string Name);

/// The bottom specification: every condition is `false`. Its abstract-lock
/// implementation is a single global exclusive lock (§4.1).
CommSpec bottomSpec(const DataTypeSig &Sig, std::string Name);

/// Largest SIMPLE under-approximation reachable by pruning: keeps SIMPLE
/// disjuncts, recursing through conjunctions; anything else collapses to
/// `false`. The result always implies \p F.
FormulaPtr simpleUnderApprox(const FormulaPtr &F, const DataTypeSig &Sig);

/// Applies simpleUnderApprox to every condition; the resulting spec is
/// SIMPLE and <= the input spec.
CommSpec simpleUnderApproxSpec(const CommSpec &Spec, std::string Name);

/// The §4.2 partition transform: \p Spec must be SIMPLE with plain (no key
/// function) clauses; each clause x != y becomes part(x) != part(y) using
/// the pure unary state function \p PartFn. The result is SIMPLE and <=
/// \p Spec.
CommSpec partitionSpec(const CommSpec &Spec, StateFnId PartFn,
                       std::string Name);

} // namespace comlat

#endif // COMLAT_CORE_LATTICE_H
