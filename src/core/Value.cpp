//===- core/Value.cpp - Dynamic values flowing through methods -----------===//

#include "core/Value.h"

#include <cmath>
#include <cstdio>

using namespace comlat;

double Value::asNumber() const {
  assert(isNumber() && "value is not numeric");
  return isInt() ? static_cast<double>(I) : D;
}

bool Value::operator==(const Value &O) const {
  if (K == O.K) {
    switch (K) {
    case Kind::None:
      return true;
    case Kind::Bool:
    case Kind::Int:
      return I == O.I;
    case Kind::Real:
      return D == O.D;
    }
    COMLAT_UNREACHABLE("bad value kind");
  }
  // Numeric cross-kind equality: 3 == 3.0.
  if (isNumber() && O.isNumber())
    return asNumber() == O.asNumber();
  return false;
}

bool Value::operator<(const Value &O) const {
  if (K != O.K)
    return static_cast<uint8_t>(K) < static_cast<uint8_t>(O.K);
  switch (K) {
  case Kind::None:
    return false;
  case Kind::Bool:
  case Kind::Int:
    return I < O.I;
  case Kind::Real:
    return D < O.D;
  }
  COMLAT_UNREACHABLE("bad value kind");
}

uint64_t Value::hash() const {
  uint64_t Bits;
  switch (K) {
  case Kind::None:
    Bits = 0x6e6f6e65ull;
    break;
  case Kind::Bool:
    Bits = I ? 0x74727565ull : 0x66616c73ull;
    break;
  case Kind::Int:
    Bits = static_cast<uint64_t>(I);
    break;
  case Kind::Real: {
    double Val = D;
    static_assert(sizeof(Val) == sizeof(Bits), "unexpected double size");
    __builtin_memcpy(&Bits, &Val, sizeof(Bits));
    break;
  }
  }
  // SplitMix-style finalizer with the kind mixed in.
  Bits ^= static_cast<uint64_t>(K) << 56;
  Bits = (Bits ^ (Bits >> 30)) * 0xBF58476D1CE4E5B9ull;
  Bits = (Bits ^ (Bits >> 27)) * 0x94D049BB133111EBull;
  return Bits ^ (Bits >> 31);
}

std::string Value::str() const {
  char Buf[64];
  switch (K) {
  case Kind::None:
    return "()";
  case Kind::Bool:
    return I ? "true" : "false";
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
    return Buf;
  case Kind::Real:
    std::snprintf(Buf, sizeof(Buf), "%g", D);
    return Buf;
  }
  COMLAT_UNREACHABLE("bad value kind");
}
