//===- core/Simplify.cpp - Formula normalization ---------------------------===//

#include "core/Simplify.h"

#include <algorithm>
#include <map>

using namespace comlat;
using namespace comlat::dsl;

/// Negates a comparison operator.
static CmpOp negateCmp(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return CmpOp::NE;
  case CmpOp::NE:
    return CmpOp::EQ;
  case CmpOp::LT:
    return CmpOp::GE;
  case CmpOp::LE:
    return CmpOp::GT;
  case CmpOp::GT:
    return CmpOp::LE;
  case CmpOp::GE:
    return CmpOp::LT;
  }
  COMLAT_UNREACHABLE("bad comparison op");
}

/// Folds a comparison of two constants; returns nullptr when not foldable.
static FormulaPtr foldConstCmp(CmpOp Op, const TermPtr &L, const TermPtr &R) {
  if (L->K != Term::Kind::Const || R->K != Term::Kind::Const)
    return nullptr;
  const Value &A = L->Literal, &B = R->Literal;
  switch (Op) {
  case CmpOp::EQ:
    return A == B ? top() : bottom();
  case CmpOp::NE:
    return A != B ? top() : bottom();
  default:
    break;
  }
  if (!A.isNumber() || !B.isNumber())
    return nullptr;
  const double X = A.asNumber(), Y = B.asNumber();
  switch (Op) {
  case CmpOp::LT:
    return X < Y ? top() : bottom();
  case CmpOp::LE:
    return X <= Y ? top() : bottom();
  case CmpOp::GT:
    return X > Y ? top() : bottom();
  case CmpOp::GE:
    return X >= Y ? top() : bottom();
  default:
    COMLAT_UNREACHABLE("bad comparison op");
  }
}

static FormulaPtr simplifyCmp(const FormulaPtr &F) {
  if (FormulaPtr Folded = foldConstCmp(F->Op, F->Lhs, F->Rhs))
    return Folded;
  // A term always equals itself within one evaluation (terms are
  // deterministic given the invocation pair and resolver).
  if (F->Lhs->key() == F->Rhs->key()) {
    switch (F->Op) {
    case CmpOp::EQ:
    case CmpOp::LE:
    case CmpOp::GE:
      return top();
    case CmpOp::NE:
    case CmpOp::LT:
    case CmpOp::GT:
      return bottom();
    }
  }
  // Canonical operand order for the symmetric operators.
  if ((F->Op == CmpOp::EQ || F->Op == CmpOp::NE) &&
      F->Rhs->key() < F->Lhs->key())
    return cmp(F->Op, F->Rhs, F->Lhs);
  return F;
}

static FormulaPtr simplifyNot(FormulaPtr Inner) {
  switch (Inner->K) {
  case Formula::Kind::True:
    return bottom();
  case Formula::Kind::False:
    return top();
  case Formula::Kind::Not:
    return Inner->Kids[0];
  case Formula::Kind::Cmp:
    return simplifyCmp(cmp(negateCmp(Inner->Op), Inner->Lhs, Inner->Rhs));
  case Formula::Kind::And:
  case Formula::Kind::Or:
    return negate(std::move(Inner));
  }
  COMLAT_UNREACHABLE("bad formula kind");
}

static FormulaPtr simplifyJunction(Formula::Kind Kind,
                                   std::vector<FormulaPtr> SimplifiedKids) {
  const bool IsAnd = Kind == Formula::Kind::And;
  // Flatten nested junctions of the same kind, drop neutral elements, and
  // short-circuit on the dominating element.
  std::map<std::string, FormulaPtr> Unique;
  std::vector<FormulaPtr> Work = std::move(SimplifiedKids);
  for (size_t I = 0; I != Work.size(); ++I) {
    const FormulaPtr &Kid = Work[I];
    if (Kid->K == Kind) {
      Work.insert(Work.end(), Kid->Kids.begin(), Kid->Kids.end());
      continue;
    }
    if ((IsAnd && Kid->isTrue()) || (!IsAnd && Kid->isFalse()))
      continue; // Neutral element.
    if ((IsAnd && Kid->isFalse()) || (!IsAnd && Kid->isTrue()))
      return IsAnd ? bottom() : top(); // Dominating element.
    Unique.emplace(Kid->key(), Kid);
  }
  if (Unique.empty())
    return IsAnd ? top() : bottom();
  if (Unique.size() == 1)
    return Unique.begin()->second;
  std::vector<FormulaPtr> Kids;
  Kids.reserve(Unique.size());
  for (auto &Entry : Unique)
    Kids.push_back(Entry.second);
  return IsAnd ? conj(std::move(Kids)) : disj(std::move(Kids));
}

FormulaPtr comlat::simplify(const FormulaPtr &F) {
  switch (F->K) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return F;
  case Formula::Kind::Cmp:
    return simplifyCmp(F);
  case Formula::Kind::Not:
    return simplifyNot(simplify(F->Kids[0]));
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    std::vector<FormulaPtr> Kids;
    Kids.reserve(F->Kids.size());
    for (const FormulaPtr &Kid : F->Kids)
      Kids.push_back(simplify(Kid));
    return simplifyJunction(F->K, std::move(Kids));
  }
  }
  COMLAT_UNREACHABLE("bad formula kind");
}
