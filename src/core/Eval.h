//===- core/Eval.h - Evaluating commutativity conditions --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates condition formulas against a pair of method invocations. The
/// interesting part of evaluation is resolving state-function applications
/// f(s, ...): the *caller* decides how, through an ApplyResolver. The
/// conflict-detection schemes of §3 differ exactly in that policy:
///
///  * forward gatekeepers resolve S1-applications from result logs recorded
///    when the first invocation executed (§3.3.1);
///  * general gatekeepers resolve them by rolling the structure back to the
///    historical state (§3.3.2);
///  * tests resolve them against mock or real structures directly.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_CORE_EVAL_H
#define COMLAT_CORE_EVAL_H

#include "core/Expr.h"

#include <functional>

namespace comlat {

/// Policy object that resolves state-function applications during formula
/// evaluation. Argument terms have already been evaluated.
class ApplyResolver {
public:
  virtual ~ApplyResolver();

  /// Returns the value of the application node \p Apply (an Apply term)
  /// given its already-evaluated arguments. The span borrows the caller's
  /// evaluation stack; resolvers must not retain it.
  virtual Value resolveApply(const Term &Apply, ValueSpan EvaledArgs) = 0;
};

/// An ApplyResolver backed by a plain function; convenient in tests.
class FnResolver : public ApplyResolver {
public:
  using FnType = std::function<Value(const Term &, ValueSpan)>;

  explicit FnResolver(FnType Fn) : Fn(std::move(Fn)) {}

  Value resolveApply(const Term &Apply, ValueSpan EvaledArgs) override {
    return Fn(Apply, EvaledArgs);
  }

private:
  FnType Fn;
};

/// Everything needed to evaluate a condition for one ordered invocation
/// pair: (m1(v1))s1 / r1 followed by (m2(v2))s2 / r2.
struct EvalContext {
  const Invocation *Inv1 = nullptr;
  const Invocation *Inv2 = nullptr;
  ApplyResolver *Resolver = nullptr;
};

/// Evaluates a term. Aborts on type errors (malformed specifications are
/// programming errors, not runtime conditions).
Value evalTerm(const TermPtr &T, EvalContext &Ctx);

/// Evaluates a formula to its truth value.
bool evalFormula(const FormulaPtr &F, EvalContext &Ctx);

/// The primitive arithmetic/comparison semantics of L1, shared by the tree
/// interpreter and the compiled evaluator (core/CondIR.h) so the two can
/// never disagree on a leaf operation.
Value evalArithOp(ArithOp Op, const Value &L, const Value &R);
bool evalCmpOp(CmpOp Op, const Value &L, const Value &R);

} // namespace comlat

#endif // COMLAT_CORE_EVAL_H
