//===- support/Stats.cpp - Simple summary statistics ---------------------===//

#include "support/Stats.h"

#include <cmath>

using namespace comlat;

void Summary::add(double Sample) {
  if (N == 0) {
    Lo = Hi = Sample;
  } else {
    if (Sample < Lo)
      Lo = Sample;
    if (Sample > Hi)
      Hi = Sample;
  }
  ++N;
  const double Delta = Sample - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (Sample - Mean);
}

double Summary::stddev() const {
  if (N < 2)
    return 0.0;
  return std::sqrt(M2 / static_cast<double>(N - 1));
}
