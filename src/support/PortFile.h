//===- support/PortFile.h - Atomic bound-port publication ------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic `--port-file` publication for the serving binaries. CI starts a
/// server with --port=0, polls the port file, and connects to whatever it
/// reads — so the file must never be observable empty or half-written.
/// Write-to-temp + fsync + rename makes its appearance atomic: a reader
/// either sees no file or the complete port line.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_PORTFILE_H
#define COMLAT_SUPPORT_PORTFILE_H

#include <cstdint>
#include <cstdio>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace comlat {

/// Atomically publishes \p Port (one decimal line) at \p Path via a
/// same-directory temp file and rename(2). False on any syscall failure;
/// the temp file is cleaned up.
inline bool writePortFile(const std::string &Path, uint16_t Port) {
  const std::string Tmp = Path + ".tmp";
  const int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  char Buf[16];
  const int N = std::snprintf(Buf, sizeof(Buf), "%u\n", unsigned(Port));
  bool Ok = N > 0;
  for (int Off = 0; Ok && Off < N;) {
    const ssize_t W = ::write(Fd, Buf + Off, static_cast<size_t>(N - Off));
    if (W <= 0)
      Ok = false;
    else
      Off += static_cast<int>(W);
  }
  // The rename's atomicity only helps if the data precedes it to disk.
  Ok = Ok && ::fsync(Fd) == 0;
  Ok = (::close(Fd) == 0) && Ok;
  Ok = Ok && ::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok)
    ::unlink(Tmp.c_str());
  return Ok;
}

} // namespace comlat

#endif // COMLAT_SUPPORT_PORTFILE_H
