//===- support/AllocCount.cpp - Global allocation counting -----------------===//

#include "support/AllocCount.h"

#ifdef COMLAT_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<uint64_t> GAllocs{0};

void *countedAlloc(size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return null legally; normalize so new never does.
  return std::malloc(Size ? Size : 1);
}

void *countedAlignedAlloc(size_t Size, size_t Align) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  void *P = nullptr;
  if (posix_memalign(&P, Align < sizeof(void *) ? sizeof(void *) : Align,
                     Size ? Size : Align))
    return nullptr;
  return P;
}
} // namespace

bool comlat::allocCountingEnabled() { return true; }

uint64_t comlat::totalAllocs() {
  return GAllocs.load(std::memory_order_relaxed);
}

// Replacement allocation functions ([new.delete.single] / .array): every
// heap allocation in the process funnels through countedAlloc. sized and
// unsized deletes both just free.

void *operator new(size_t Size) {
  if (void *P = countedAlloc(Size))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size) { return ::operator new(Size); }

void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}

void *operator new[](size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}

void *operator new(size_t Size, std::align_val_t Align) {
  if (void *P = countedAlignedAlloc(Size, static_cast<size_t>(Align)))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size, std::align_val_t Align) {
  return ::operator new(Size, Align);
}

void *operator new(size_t Size, std::align_val_t Align,
                   const std::nothrow_t &) noexcept {
  return countedAlignedAlloc(Size, static_cast<size_t>(Align));
}

void *operator new[](size_t Size, std::align_val_t Align,
                     const std::nothrow_t &) noexcept {
  return countedAlignedAlloc(Size, static_cast<size_t>(Align));
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, std::align_val_t,
                     const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::align_val_t,
                       const std::nothrow_t &) noexcept {
  std::free(P);
}

#else // !COMLAT_COUNT_ALLOCS

bool comlat::allocCountingEnabled() { return false; }
uint64_t comlat::totalAllocs() { return 0; }

#endif // COMLAT_COUNT_ALLOCS
