//===- support/Random.cpp - Deterministic pseudo-random numbers ----------===//

#include "support/Random.h"

using namespace comlat;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow bound must be nonzero");
  // Rejection sampling: discard values in the biased tail.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  const uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo);
  if (Span == UINT64_MAX)
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span + 1));
}

double Rng::nextDouble() {
  // 53 random mantissa bits scaled to [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

std::vector<uint32_t> Rng::permutation(uint32_t N) {
  std::vector<uint32_t> Perm(N);
  for (uint32_t I = 0; I != N; ++I)
    Perm[I] = I;
  shuffle(Perm);
  return Perm;
}
