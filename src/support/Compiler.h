//===- support/Compiler.h - Portability and diagnostics macros -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros shared across the library. This project follows
/// the LLVM coding standards: no exceptions, no RTTI, assert liberally, and
/// use COMLAT_UNREACHABLE to mark impossible control flow.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_COMPILER_H
#define COMLAT_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached. Prints the message
/// and aborts in all build modes; the cost is irrelevant because the branch
/// is never taken in a correct program.
#define COMLAT_UNREACHABLE(Msg)                                               \
  do {                                                                        \
    std::fprintf(stderr, "comlat: unreachable at %s:%d: %s\n", __FILE__,      \
                 __LINE__, (Msg));                                            \
    std::abort();                                                             \
  } while (false)

#if defined(__GNUC__) || defined(__clang__)
#define COMLAT_LIKELY(X) __builtin_expect(!!(X), 1)
#define COMLAT_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define COMLAT_LIKELY(X) (X)
#define COMLAT_UNLIKELY(X) (X)
#endif

#endif // COMLAT_SUPPORT_COMPILER_H
