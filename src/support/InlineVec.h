//===- support/InlineVec.h - Small-buffer vector ----------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with N inline slots, built for the conflict-detection hot
/// path: invocation argument lists, undo logs and touched-detector sets
/// are almost always tiny, so the common case never allocates. Spill
/// beyond N goes to an optional BumpArena (per-transaction, reset not
/// freed — see BumpArena.h) or, without one, to the heap.
///
/// clear() keeps the current storage, so a pooled container reaches a
/// steady state where even spilled capacity is reused allocation-free.
/// resetStorage() additionally drops spilled storage (returning heap
/// spill, abandoning arena spill to its owner's reset) — the transaction
/// pool calls it before rewinding the arena.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_INLINEVEC_H
#define COMLAT_SUPPORT_INLINEVEC_H

#include "support/BumpArena.h"

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace comlat {

/// Vector with \p N inline slots; spills to an optional arena, else heap.
template <typename T, unsigned N> class InlineVec {
public:
  static_assert(N > 0, "need at least one inline slot");

  InlineVec() = default;

  /// Overflow beyond the inline slots comes from \p Arena (may be null =
  /// heap). The arena must outlive the container's last spilled use.
  explicit InlineVec(BumpArena *Arena) : Arena(Arena) {}

  InlineVec(InlineVec &&Other) noexcept { moveFrom(Other); }

  InlineVec &operator=(InlineVec &&Other) noexcept {
    if (this != &Other) {
      destroyAll();
      releaseSpill();
      moveFrom(Other);
    }
    return *this;
  }

  // Copies are only instantiated when used; move-only element types keep
  // working as long as nobody copies the container.
  InlineVec(const InlineVec &Other) {
    reserve(Other.Size);
    for (size_t I = 0; I != Other.Size; ++I)
      ::new (Data + I) T(Other.Data[I]);
    Size = Other.Size;
  }

  InlineVec &operator=(const InlineVec &Other) {
    if (this != &Other) {
      clear();
      reserve(Other.Size);
      for (size_t I = 0; I != Other.Size; ++I)
        ::new (Data + I) T(Other.Data[I]);
      Size = Other.Size;
    }
    return *this;
  }

  ~InlineVec() {
    destroyAll();
    releaseSpill();
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }
  bool isInline() const { return Data == inlineData(); }

  T *data() { return Data; }
  const T *data() const { return Data; }
  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  T &operator[](size_t I) {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Size - 1]; }

  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }

  template <typename... ArgTs> T &emplace_back(ArgTs &&...Args) {
    if (Size == Cap)
      grow(Cap * 2);
    T *Slot = ::new (Data + Size) T(std::forward<ArgTs>(Args)...);
    ++Size;
    return *Slot;
  }

  void pop_back() {
    assert(Size != 0 && "pop from empty");
    Data[--Size].~T();
  }

  /// Destroys elements; keeps whatever storage is attached (inline or
  /// spilled), so refilling to the same size never allocates.
  void clear() {
    destroyAll();
    Size = 0;
  }

  /// clear() plus: drop spilled storage and return to the inline buffer.
  /// Required before the owning arena resets (the spill would dangle).
  void resetStorage() {
    destroyAll();
    releaseSpill();
    Data = inlineData();
    Cap = N;
    Size = 0;
  }

  void reserve(size_t Want) {
    if (Want > Cap)
      grow(Want);
  }

  /// Default-constructs or destroys to reach exactly \p Want elements.
  void resize(size_t Want) {
    while (Size > Want)
      pop_back();
    reserve(Want);
    while (Size < Want)
      emplace_back();
  }

  /// Rebinds the overflow source. Only legal while un-spilled (the pool
  /// wires arenas up front; nothing rebinds mid-flight).
  void setArena(BumpArena *A) {
    assert(isInline() && "rebinding arena under live spill");
    Arena = A;
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(InlineBuf); }
  const T *inlineData() const { return reinterpret_cast<const T *>(InlineBuf); }

  void destroyAll() {
    for (size_t I = Size; I != 0; --I)
      Data[I - 1].~T();
  }

  /// Frees heap spill; arena spill is abandoned (its owner reclaims it
  /// wholesale on reset).
  void releaseSpill() {
    if (!isInline() && !FromArena)
      ::operator delete(Data);
  }

  void grow(size_t Want) {
    size_t NewCap = Cap * 2 > Want ? Cap * 2 : Want;
    T *NewData;
    bool NewFromArena = Arena != nullptr;
    if (Arena)
      NewData =
          static_cast<T *>(Arena->allocate(NewCap * sizeof(T), alignof(T)));
    else
      NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Size; ++I) {
      ::new (NewData + I) T(std::move(Data[I]));
      Data[I].~T();
    }
    releaseSpill();
    Data = NewData;
    Cap = NewCap;
    FromArena = NewFromArena;
  }

  void moveFrom(InlineVec &Other) noexcept {
    Arena = Other.Arena;
    if (Other.isInline()) {
      Data = inlineData();
      Cap = N;
      FromArena = false;
      for (size_t I = 0; I != Other.Size; ++I) {
        ::new (Data + I) T(std::move(Other.Data[I]));
        Other.Data[I].~T();
      }
      Size = Other.Size;
      Other.Size = 0;
    } else {
      // Steal the spill buffer (heap or arena; for arena spill the donor
      // and recipient share the owning arena's lifetime by construction).
      Data = Other.Data;
      Cap = Other.Cap;
      Size = Other.Size;
      FromArena = Other.FromArena;
      Other.Data = Other.inlineData();
      Other.Cap = N;
      Other.Size = 0;
      Other.FromArena = false;
    }
  }

  alignas(T) unsigned char InlineBuf[N * sizeof(T)];
  T *Data = inlineData();
  size_t Size = 0;
  size_t Cap = N;
  BumpArena *Arena = nullptr;
  bool FromArena = false;
};

} // namespace comlat

#endif // COMLAT_SUPPORT_INLINEVEC_H
