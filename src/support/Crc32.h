//===- support/Crc32.h - CRC32C checksums ------------------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected form
/// 0x82F63B78) over byte buffers. The WAL and snapshot files checksum
/// every record with it; the choice of polynomial matches what storage
/// systems conventionally use, so external tooling can re-verify dumps.
/// Table-driven, one byte at a time — plenty for a log whose write path is
/// fdatasync-bound.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_CRC32_H
#define COMLAT_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace comlat {

namespace detail {

inline const std::array<uint32_t, 256> &crc32cTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (unsigned K = 0; K != 8; ++K)
        C = (C & 1) ? (0x82F63B78u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// CRC32C of \p Size bytes at \p Data, continuing from \p Seed (pass the
/// previous return value to checksum a buffer in pieces; 0 to start).
inline uint32_t crc32c(const void *Data, size_t Size, uint32_t Seed = 0) {
  const std::array<uint32_t, 256> &T = detail::crc32cTable();
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I != Size; ++I)
    C = T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

inline uint32_t crc32c(std::string_view Bytes, uint32_t Seed = 0) {
  return crc32c(Bytes.data(), Bytes.size(), Seed);
}

} // namespace comlat

#endif // COMLAT_SUPPORT_CRC32_H
