//===- support/AllocCount.h - Global allocation counting --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide heap-allocation counting behind the COMLAT_COUNT_ALLOCS
/// build option. When enabled, replacement operator new/delete bump one
/// relaxed atomic per allocation; the benchmarks report allocs/op deltas
/// and CI enforces the zero-allocation steady-state invariant on the
/// gated set microbenchmark. When disabled (the default, and always under
/// sanitizers, whose runtimes interpose the same symbols) the functions
/// below are stubs: allocCountingEnabled() is false and totalAllocs()
/// stays 0, so callers report -1/"n/a" instead of a bogus zero.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_ALLOCCOUNT_H
#define COMLAT_SUPPORT_ALLOCCOUNT_H

#include <cstdint>

namespace comlat {

/// True when this build counts heap allocations (COMLAT_COUNT_ALLOCS=ON).
bool allocCountingEnabled();

/// Allocations observed so far (monotone; 0 when counting is disabled).
uint64_t totalAllocs();

} // namespace comlat

#endif // COMLAT_SUPPORT_ALLOCCOUNT_H
