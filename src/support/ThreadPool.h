//===- support/ThreadPool.h - Persistent worker pool ------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pool of worker threads executing fork-join style jobs.
/// The speculative Executor used to spawn fresh std::threads on every
/// run(), which puts thread creation/teardown (tens of microseconds each)
/// on the critical path of every measured region and every round of a
/// round-structured driver. The pool parks its workers on a condition
/// variable between jobs instead, so repeated run() calls reuse warm
/// threads.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_THREADPOOL_H
#define COMLAT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comlat {

/// A fixed-size pool running one job at a time across all workers.
/// Not thread-safe: runOnAll() must be called from one controller thread
/// at a time (the executor serializes runs anyway).
class ThreadPool {
public:
  /// Spawns \p NumThreads workers, parked until the first job.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs \p Job(WorkerIndex) on every worker concurrently and returns
  /// when all invocations completed.
  void runOnAll(const std::function<void(unsigned)> &Job);

private:
  void workerMain(unsigned Index);

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable JobReady;
  std::condition_variable JobDone;
  const std::function<void(unsigned)> *Job = nullptr; // guarded by M
  uint64_t Generation = 0;                            // guarded by M
  unsigned Remaining = 0;                             // guarded by M
  bool ShuttingDown = false;                          // guarded by M
};

} // namespace comlat

#endif // COMLAT_SUPPORT_THREADPOOL_H
