//===- support/Options.h - Minimal command-line option parser --*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny `--key=value` command-line parser shared by the example and
/// benchmark executables so that every experiment's workload size, seed and
/// thread count can be overridden without recompiling.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_OPTIONS_H
#define COMLAT_SUPPORT_OPTIONS_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace comlat {

/// Parses `--key=value` and bare `--flag` arguments.
///
/// Unknown positional arguments are rejected with an error message so typos
/// in experiment scripts fail loudly. Typical use:
/// \code
///   Options Opts(Argc, Argv);
///   int Threads = Opts.getInt("threads", 4);
///   uint64_t Seed = Opts.getUInt("seed", 42);
/// \endcode
class Options {
public:
  /// Parses the argument vector; exits with a diagnostic on malformed input.
  Options(int Argc, const char *const *Argv);

  /// Returns true if `--key` or `--key=...` was supplied.
  bool has(const std::string &Key) const;

  /// Returns the value of `--key=N` as a signed integer, or \p Default.
  int64_t getInt(const std::string &Key, int64_t Default) const;

  /// Returns the value of `--key=N` as an unsigned integer, or \p Default.
  uint64_t getUInt(const std::string &Key, uint64_t Default) const;

  /// Returns the value of `--key=X` as a double, or \p Default.
  double getDouble(const std::string &Key, double Default) const;

  /// Returns the value of `--key=S`, or \p Default.
  std::string getString(const std::string &Key,
                        const std::string &Default) const;

  /// Returns true when `--key` appears, either bare or as `=true`/`=1`.
  bool getBool(const std::string &Key, bool Default = false) const;

  /// Exits with a diagnostic (status 2) when any parsed flag is not in
  /// \p Known — so a typo like `--theads=8` fails loudly instead of
  /// silently running with the default. Call once, after construction,
  /// listing every flag the binary understands.
  void checkKnown(std::initializer_list<const char *> Known) const;

private:
  std::map<std::string, std::string> Values;
};

} // namespace comlat

#endif // COMLAT_SUPPORT_OPTIONS_H
