//===- support/Timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple monotonic wall-clock timer used by the benchmark harnesses to
/// report the run-time and overhead numbers of Tables 1-2 and Figs. 10-12.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_TIMER_H
#define COMLAT_SUPPORT_TIMER_H

#include <chrono>

namespace comlat {

/// Measures elapsed wall-clock time from construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace comlat

#endif // COMLAT_SUPPORT_TIMER_H
