//===- support/Stats.h - Simple summary statistics -------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming summary statistics (count/mean/min/max/stddev) used by the
/// benchmark harnesses when reporting repeated-trial measurements.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_STATS_H
#define COMLAT_SUPPORT_STATS_H

#include <cstdint>

namespace comlat {

/// Accumulates samples and reports summary statistics (Welford's method).
class Summary {
public:
  /// Adds one sample.
  void add(double Sample);

  uint64_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
  double min() const { return N == 0 ? 0.0 : Lo; }
  double max() const { return N == 0 ? 0.0 : Hi; }

  /// Sample standard deviation (zero for fewer than two samples).
  double stddev() const;

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Lo = 0.0;
  double Hi = 0.0;
};

} // namespace comlat

#endif // COMLAT_SUPPORT_STATS_H
