//===- support/ThreadPool.cpp - Persistent worker pool ---------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace comlat;

ThreadPool::ThreadPool(unsigned NumThreads) {
  assert(NumThreads > 0 && "pool needs at least one worker");
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(M);
    ShuttingDown = true;
  }
  JobReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runOnAll(const std::function<void(unsigned)> &Job) {
  {
    std::lock_guard<std::mutex> Guard(M);
    assert(Remaining == 0 && "previous job still running");
    this->Job = &Job;
    Remaining = static_cast<unsigned>(Workers.size());
    ++Generation;
  }
  JobReady.notify_all();
  std::unique_lock<std::mutex> Guard(M);
  JobDone.wait(Guard, [this] { return Remaining == 0; });
  this->Job = nullptr;
}

void ThreadPool::workerMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *Current = nullptr;
    {
      std::unique_lock<std::mutex> Guard(M);
      JobReady.wait(Guard, [this, SeenGeneration] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      Current = Job;
    }
    (*Current)(Index);
    {
      std::lock_guard<std::mutex> Guard(M);
      --Remaining;
    }
    // The controller waits on JobDone whenever Remaining != 0, so the last
    // finisher must always signal; notifying unconditionally is cheap
    // relative to a job.
    JobDone.notify_one();
  }
}
