//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (SplitMix64 seeding a xoshiro256**) used by
/// the workload generators and property tests. All experiments in this
/// repository are deterministic given a seed, which the paper's inputs
/// ("randomly generated points", "randomly generated mesh") require for
/// reproducibility.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_RANDOM_H
#define COMLAT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace comlat {

/// Deterministic 64-bit PRNG with convenience distributions.
///
/// The generator is xoshiro256** with SplitMix64 state expansion; it is not
/// cryptographic but has excellent statistical quality for simulation use.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) { reseed(Seed); }

  /// Re-initializes the state from a single 64-bit seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in the inclusive range
  /// [\p Lo, \p Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P = 0.5);

  /// Produces a random permutation of 0..N-1 (Fisher-Yates).
  std::vector<uint32_t> permutation(uint32_t N);

  /// Shuffles \p Values in place (Fisher-Yates).
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (std::size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

private:
  uint64_t State[4];
};

} // namespace comlat

#endif // COMLAT_SUPPORT_RANDOM_H
