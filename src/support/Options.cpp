//===- support/Options.cpp - Minimal command-line option parser ----------===//

#include "support/Options.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace comlat;

Options::Options(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                   Arg.c_str());
      std::exit(2);
    }
    Arg = Arg.substr(2);
    const size_t Eq = Arg.find('=');
    if (Eq == std::string::npos)
      Values[Arg] = "true";
    else
      Values[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
  }
}

bool Options::has(const std::string &Key) const { return Values.count(Key); }

int64_t Options::getInt(const std::string &Key, int64_t Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

uint64_t Options::getUInt(const std::string &Key, uint64_t Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return std::strtoull(It->second.c_str(), nullptr, 10);
}

double Options::getDouble(const std::string &Key, double Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

std::string Options::getString(const std::string &Key,
                               const std::string &Default) const {
  const auto It = Values.find(Key);
  return It == Values.end() ? Default : It->second;
}

void Options::checkKnown(std::initializer_list<const char *> Known) const {
  for (const auto &[Key, Value] : Values) {
    bool Found = false;
    for (const char *K : Known)
      if (Key == K) {
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", Key.c_str());
      std::exit(2);
    }
  }
}

bool Options::getBool(const std::string &Key, bool Default) const {
  const auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return It->second == "true" || It->second == "1" || It->second == "yes";
}
