//===- support/BumpArena.h - Reset-not-free bump allocator ------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slab-based bump allocator for per-transaction overflow storage. The
/// lifetime contract is the transaction lifecycle itself: everything
/// allocated here dies (logically) at commit/abort, so reset() just
/// rewinds the bump pointer and keeps every slab for the next use. After
/// the first few transactions have sized the slabs, a pooled transaction
/// never allocates again — this is what makes InlineVec spill safe on the
/// zero-allocation hot path.
///
/// Not thread-safe; each arena is owned by exactly one transaction, which
/// is owned by exactly one worker at a time.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_BUMPARENA_H
#define COMLAT_SUPPORT_BUMPARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace comlat {

/// Bump allocator over a chain of slabs that are recycled, never freed,
/// between reset() calls.
class BumpArena {
public:
  explicit BumpArena(size_t SlabBytes = 4096) : DefaultSlabBytes(SlabBytes) {
    assert(SlabBytes >= 64 && "slabs must fit at least a few nodes");
  }

  ~BumpArena() {
    for (const Slab &S : Slabs)
      ::operator delete(S.Mem);
  }

  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align. Storage stays valid
  /// until the next reset().
  void *allocate(size_t Bytes, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
    for (;;) {
      if (Cur < Slabs.size()) {
        Slab &S = Slabs[Cur];
        const uintptr_t Base = reinterpret_cast<uintptr_t>(S.Mem);
        const uintptr_t At = (Base + Offset + Align - 1) & ~(Align - 1);
        if (At + Bytes <= Base + S.Size) {
          Offset = (At + Bytes) - Base;
          return reinterpret_cast<void *>(At);
        }
        // Current slab exhausted: move on (its tail is wasted until the
        // next reset, which is fine — slabs are sized for the common
        // case and oversized requests get a dedicated slab below).
        ++Cur;
        Offset = 0;
        continue;
      }
      const size_t Size =
          Bytes + Align > DefaultSlabBytes ? Bytes + Align : DefaultSlabBytes;
      Slabs.push_back(Slab{::operator new(Size), Size});
      // Stay on this new slab; the loop retries the bump.
    }
  }

  /// Rewinds to empty without releasing any slab.
  void reset() {
    Cur = 0;
    Offset = 0;
  }

  /// Slabs currently owned (monotone under reset; grows only on overflow).
  size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    void *Mem;
    size_t Size;
  };

  size_t DefaultSlabBytes;
  std::vector<Slab> Slabs;
  size_t Cur = 0;    ///< Index of the slab being bumped.
  size_t Offset = 0; ///< Bump offset within Slabs[Cur].
};

} // namespace comlat

#endif // COMLAT_SUPPORT_BUMPARENA_H
