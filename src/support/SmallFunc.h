//===- support/SmallFunc.h - Move-only callable, inline captures -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only std::function replacement for undo logs and commit
/// actions. Captures up to InlineBytes (default 48) live inside the
/// object — every undo/redo lambda on the hot path captures a pointer
/// and one or two scalars, well under the bound — so registering an
/// action allocates nothing. Larger callables spill to the heap, which
/// keeps correctness for cold paths (tests, service completions) at the
/// cost of one allocation there.
///
/// Move-only on purpose: an undo action may own resources and must run
/// at most once per registration; copyability invites double-run bugs
/// and forces capture copies. Call sites that used to copy a
/// std::function now move from a mutable source list.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SUPPORT_SMALLFUNC_H
#define COMLAT_SUPPORT_SMALLFUNC_H

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace comlat {

template <typename Sig, size_t InlineBytes = 48> class SmallFunc;

/// Type-erased move-only callable with inline capture storage.
template <typename R, typename... ArgTs, size_t InlineBytes>
class SmallFunc<R(ArgTs...), InlineBytes> {
public:
  SmallFunc() = default;

  /// Wraps any callable. Captures of at most InlineBytes (and at most
  /// max_align_t alignment) are stored inline; larger ones on the heap.
  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, SmallFunc> &&
                std::is_invocable_r_v<R, std::decay_t<Fn> &, ArgTs...>>>
  SmallFunc(Fn &&F) {
    using Callable = std::decay_t<Fn>;
    if constexpr (sizeof(Callable) <= InlineBytes &&
                  alignof(Callable) <= alignof(std::max_align_t)) {
      ::new (static_cast<void *>(Buf)) Callable(std::forward<Fn>(F));
      Call = &callInline<Callable>;
      Manage = &manageInline<Callable>;
    } else {
      Heap = new Callable(std::forward<Fn>(F));
      Call = &callHeap<Callable>;
      Manage = &manageHeap<Callable>;
    }
  }

  SmallFunc(SmallFunc &&Other) noexcept { moveFrom(Other); }

  SmallFunc &operator=(SmallFunc &&Other) noexcept {
    if (this != &Other) {
      reset();
      moveFrom(Other);
    }
    return *this;
  }

  SmallFunc(const SmallFunc &) = delete;
  SmallFunc &operator=(const SmallFunc &) = delete;

  ~SmallFunc() { reset(); }

  explicit operator bool() const { return Call != nullptr; }

  R operator()(ArgTs... Args) const {
    assert(Call && "calling an empty SmallFunc");
    return Call(target(), std::forward<ArgTs>(Args)...);
  }

  /// Drops the callable; the object becomes empty.
  void reset() {
    if (Manage)
      Manage(Op::Destroy, this, nullptr);
    Call = nullptr;
    Manage = nullptr;
    Heap = nullptr;
  }

private:
  enum class Op { Destroy, Move };

  using CallFn = R (*)(void *, ArgTs &&...);
  using ManageFn = void (*)(Op, SmallFunc *, SmallFunc *);

  void *target() const {
    return Heap ? Heap : const_cast<void *>(static_cast<const void *>(Buf));
  }

  template <typename Callable>
  static R callInline(void *P, ArgTs &&...Args) {
    return (*static_cast<Callable *>(P))(std::forward<ArgTs>(Args)...);
  }

  template <typename Callable> static R callHeap(void *P, ArgTs &&...Args) {
    return (*static_cast<Callable *>(P))(std::forward<ArgTs>(Args)...);
  }

  template <typename Callable>
  static void manageInline(Op O, SmallFunc *Self, SmallFunc *Dst) {
    Callable *Src = static_cast<Callable *>(
        static_cast<void *>(Self->Buf));
    if (O == Op::Move)
      ::new (static_cast<void *>(Dst->Buf)) Callable(std::move(*Src));
    Src->~Callable();
  }

  template <typename Callable>
  static void manageHeap(Op O, SmallFunc *Self, SmallFunc *Dst) {
    if (O == Op::Move) {
      Dst->Heap = Self->Heap; // Steal; no element move needed.
      Self->Heap = nullptr;
    } else {
      delete static_cast<Callable *>(Self->Heap);
    }
  }

  void moveFrom(SmallFunc &Other) noexcept {
    if (!Other.Call)
      return;
    Call = Other.Call;
    Manage = Other.Manage;
    Other.Manage(Op::Move, &Other, this);
    Other.Call = nullptr;
    Other.Manage = nullptr;
    Other.Heap = nullptr;
  }

  alignas(std::max_align_t) unsigned char Buf[InlineBytes];
  void *Heap = nullptr;
  CallFn Call = nullptr;
  ManageFn Manage = nullptr;
};

} // namespace comlat

#endif // COMLAT_SUPPORT_SMALLFUNC_H
