//===- adt/OwnerLocks.cpp - Generic exclusive ownership ---------------------===//

#include "adt/OwnerLocks.h"

using namespace comlat;
using namespace comlat::dsl;

OwnerSig::OwnerSig() {
  Own = Sig.addMethod("own", 1, /*HasRet=*/false, /*Mutating=*/false);
}

const OwnerSig &comlat::ownerSig() {
  static const OwnerSig S;
  return S;
}

const CommSpec &comlat::ownerSpec() {
  static const CommSpec Spec = [] {
    const OwnerSig &S = ownerSig();
    CommSpec Out(&S.Sig, "owner-exclusive");
    Out.set(S.Own, S.Own, ne(arg1(0), arg2(0)));
    return Out;
  }();
  return Spec;
}

OwnerLocks::OwnerLocks(std::string Label)
    : Scheme(ownerSpec()), Manager(&Scheme, std::move(Label)) {}

bool OwnerLocks::own(Transaction &Tx, int64_t Id) {
  return Manager.acquirePre(Tx, ownerSig().Own, {Value::integer(Id)});
}
