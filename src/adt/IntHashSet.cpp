//===- adt/IntHashSet.cpp - Open-addressing integer set --------------------===//

#include "adt/IntHashSet.h"

#include <algorithm>

using namespace comlat;

IntHashSet::IntHashSet(size_t InitialCapacity) {
  size_t Cap = 16;
  while (Cap < InitialCapacity)
    Cap <<= 1;
  Cells.resize(Cap);
}

uint64_t IntHashSet::hashKey(int64_t Key) {
  uint64_t H = static_cast<uint64_t>(Key);
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ull;
  H = (H ^ (H >> 27)) * 0x94D049BB133111EBull;
  return H ^ (H >> 31);
}

size_t IntHashSet::probeFor(int64_t Key) const {
  const size_t Mask = Cells.size() - 1;
  size_t I = hashKey(Key) & Mask;
  while (Cells[I].Used && Cells[I].Key != Key)
    I = (I + 1) & Mask;
  return I;
}

void IntHashSet::grow() {
  std::vector<Cell> Old = std::move(Cells);
  Cells.assign(Old.size() * 2, Cell{});
  Count = 0;
  for (const Cell &C : Old)
    if (C.Used)
      insert(C.Key);
}

bool IntHashSet::insert(int64_t Key) {
  if ((Count + 1) * 4 >= Cells.size() * 3)
    grow();
  const size_t I = probeFor(Key);
  if (Cells[I].Used)
    return false;
  Cells[I].Key = Key;
  Cells[I].Used = true;
  ++Count;
  return true;
}

bool IntHashSet::erase(int64_t Key) {
  const size_t Mask = Cells.size() - 1;
  size_t I = probeFor(Key);
  if (!Cells[I].Used)
    return false;
  // Backward-shift deletion: close the gap so probe chains stay intact.
  Cells[I].Used = false;
  --Count;
  size_t J = (I + 1) & Mask;
  while (Cells[J].Used) {
    const size_t Home = hashKey(Cells[J].Key) & Mask;
    // Move J back into the hole at I when its home position does not lie
    // strictly between I (exclusive) and J (inclusive) in probe order.
    const bool Movable =
        ((J - Home) & Mask) >= ((J - I) & Mask);
    if (Movable) {
      Cells[I] = Cells[J];
      Cells[J].Used = false;
      I = J;
    }
    J = (J + 1) & Mask;
  }
  return true;
}

bool IntHashSet::contains(int64_t Key) const {
  return Cells[probeFor(Key)].Used;
}

void IntHashSet::clear() {
  Cells.assign(Cells.size(), Cell{});
  Count = 0;
}

std::vector<int64_t> IntHashSet::sortedElements() const {
  std::vector<int64_t> Out;
  Out.reserve(Count);
  for (const Cell &C : Cells)
    if (C.Used)
      Out.push_back(C.Key);
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string IntHashSet::signature() const {
  std::string Out;
  for (const int64_t Key : sortedElements()) {
    Out += std::to_string(Key);
    Out += ',';
  }
  return Out;
}
