//===- adt/OwnerLocks.h - Generic exclusive ownership ------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal boosted "ownership" structure: one method own(id) whose
/// commutativity condition is id1 != id2 — i.e. generated exclusive
/// abstract locks. Applications use it to claim auxiliary per-entity state
/// (e.g. Boruvka's per-component edge lists) so conflict detection on the
/// primary structure under study stays isolated, mirroring the paper's
/// boosting of everything but the target data structure (§5).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_OWNERLOCKS_H
#define COMLAT_ADT_OWNERLOCKS_H

#include "core/Spec.h"
#include "runtime/AbstractLockManager.h"

namespace comlat {

/// Signature/spec of the ownership pseudo-ADT.
struct OwnerSig {
  DataTypeSig Sig{"owner"};
  MethodId Own;

  OwnerSig();
};

const OwnerSig &ownerSig();
const CommSpec &ownerSpec();

/// Boosted ownership: own() succeeds when no other live transaction owns
/// the same id (re-entrant for the owner).
class OwnerLocks {
public:
  explicit OwnerLocks(std::string Label);

  /// Claims \p Id exclusively until the transaction ends; false (and Tx
  /// failed) when another live transaction owns it.
  bool own(Transaction &Tx, int64_t Id);

  const AbstractLockManager &manager() const { return Manager; }

private:
  LockScheme Scheme;
  AbstractLockManager Manager;
};

} // namespace comlat

#endif // COMLAT_ADT_OWNERLOCKS_H
