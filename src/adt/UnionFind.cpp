//===- adt/UnionFind.cpp - Disjoint-set forest ------------------------------===//

#include "adt/UnionFind.h"

#include <algorithm>
#include <map>
#include <string>

using namespace comlat;

UnionFind::UnionFind(size_t NumElements) {
  Parent.reserve(NumElements);
  Rank.assign(NumElements, 0);
  for (size_t I = 0; I != NumElements; ++I)
    Parent.push_back(static_cast<int64_t>(I));
}

int64_t UnionFind::createElement() {
  const int64_t Id = static_cast<int64_t>(Parent.size());
  Parent.push_back(Id);
  Rank.push_back(0);
  return Id;
}

void UnionFind::destroyLastElement() {
  assert(!Parent.empty() && "no element to destroy");
  assert(Parent.back() == static_cast<int64_t>(Parent.size() - 1) &&
         Rank.back() == 0 && "undone element must be a singleton root");
  Parent.pop_back();
  Rank.pop_back();
}

void UnionFind::setParent(int64_t X, int64_t NewParent,
                          GateActionList *Actions) {
  const int64_t Old = Parent[X];
  Parent[X] = NewParent;
  if (Actions)
    Actions->push_back(GateAction{
        [this, X, Old] { Parent[X] = Old; },
        [this, X, NewParent] { Parent[X] = NewParent; }});
}

UnionFind::Status UnionFind::find(int64_t X, MemProbe *Probe,
                                  GateActionList *Actions, int64_t &Rep) {
  assert(X >= 0 && static_cast<size_t>(X) < Parent.size() && "bad element");
  // Walk to the root, reading each traversed element. Compressed forests
  // have short chains, so the inline slots cover practically every find.
  InlineVec<int64_t, 16> Chain;
  int64_t Cur = X;
  for (;;) {
    if (Probe && !Probe->onRead(Cur))
      return Status::Conflict;
    if (Parent[Cur] == Cur)
      break;
    Chain.push_back(Cur);
    Cur = Parent[Cur];
  }
  Rep = Cur;
  // Path compression: every traversed element now points at the root.
  // These are the concrete writes that make uf-ml reject concurrent finds
  // (§1); they leave the abstract state untouched.
  for (const int64_t Node : Chain) {
    if (Parent[Node] == Rep)
      continue;
    if (Probe && !Probe->onWrite(Node))
      return Status::Conflict;
    setParent(Node, Rep, Actions);
  }
  return Status::Ok;
}

UnionFind::Status UnionFind::unite(int64_t A, int64_t B, MemProbe *Probe,
                                   GateActionList *Actions, bool &Changed) {
  int64_t Ra = UfNone, Rb = UfNone;
  if (find(A, Probe, Actions, Ra) == Status::Conflict)
    return Status::Conflict;
  if (find(B, Probe, Actions, Rb) == Status::Conflict)
    return Status::Conflict;
  if (Ra == Rb) {
    Changed = false;
    return Status::Ok;
  }
  Changed = true;
  // Union by rank: lower-ranked root becomes the child; B's root loses
  // ties (the paper's loser definition).
  int64_t Winner = Ra, Loser = Rb;
  if (Rank[Ra] < Rank[Rb]) {
    Winner = Rb;
    Loser = Ra;
  }
  if (Probe && (!Probe->onWrite(Loser) || !Probe->onWrite(Winner)))
    return Status::Conflict;
  setParent(Loser, Winner, Actions);
  if (Rank[Winner] == Rank[Loser]) {
    const int64_t W = Winner;
    const int32_t OldRank = Rank[W];
    Rank[W] = OldRank + 1;
    if (Actions)
      Actions->push_back(GateAction{
          [this, W, OldRank] { Rank[W] = OldRank; },
          [this, W, OldRank] { Rank[W] = OldRank + 1; }});
  }
  return Status::Ok;
}

int64_t UnionFind::repOf(int64_t X) const {
  assert(X >= 0 && static_cast<size_t>(X) < Parent.size() && "bad element");
  while (Parent[X] != X)
    X = Parent[X];
  return X;
}

int64_t UnionFind::rankOfSet(int64_t X) const { return Rank[repOf(X)]; }

int64_t UnionFind::loserOf(int64_t A, int64_t B) const {
  const int64_t Ra = repOf(A), Rb = repOf(B);
  if (Ra == Rb)
    return UfNone;
  return Rank[Ra] < Rank[Rb] ? Ra : Rb;
}

int64_t UnionFind::winnerOf(int64_t A, int64_t B) const {
  const int64_t Ra = repOf(A), Rb = repOf(B);
  if (Ra == Rb)
    return UfNone;
  return Rank[Ra] < Rank[Rb] ? Rb : Ra;
}

void UnionFind::chainOf(int64_t X, std::vector<int64_t> &Out) const {
  Out.clear();
  while (true) {
    Out.push_back(X);
    if (Parent[X] == X)
      return;
    X = Parent[X];
  }
}

std::string UnionFind::signature() const {
  // Map each element to the smallest member of its set, then append the
  // representative (both are observable: membership via sameSet-style
  // queries, identity via find).
  std::map<int64_t, int64_t> SmallestOfRep;
  for (size_t I = 0; I != Parent.size(); ++I) {
    const int64_t R = repOf(static_cast<int64_t>(I));
    const auto It = SmallestOfRep.find(R);
    if (It == SmallestOfRep.end())
      SmallestOfRep[R] = static_cast<int64_t>(I);
    else
      It->second = std::min(It->second, static_cast<int64_t>(I));
  }
  std::string Out;
  for (size_t I = 0; I != Parent.size(); ++I) {
    const int64_t R = repOf(static_cast<int64_t>(I));
    Out += std::to_string(SmallestOfRep[R]);
    Out += ':';
    Out += std::to_string(R);
    Out += ',';
  }
  return Out;
}

std::string UnionFind::dumpState() const {
  std::string Out;
  Out.reserve(Parent.size() * 6);
  for (size_t I = 0; I != Parent.size(); ++I) {
    Out += std::to_string(Parent[I]);
    Out += ':';
    Out += std::to_string(Rank[I]);
    Out += ',';
  }
  return Out;
}

bool UnionFind::restoreState(std::string_view Dump) {
  std::vector<int64_t> NewParent;
  std::vector<int32_t> NewRank;
  size_t Pos = 0;
  while (Pos != Dump.size()) {
    const size_t Colon = Dump.find(':', Pos);
    if (Colon == std::string_view::npos)
      return false;
    const size_t Comma = Dump.find(',', Colon + 1);
    if (Comma == std::string_view::npos)
      return false;
    int64_t P = 0;
    int32_t R = 0;
    try {
      P = std::stoll(std::string(Dump.substr(Pos, Colon - Pos)));
      R = std::stoi(std::string(Dump.substr(Colon + 1, Comma - Colon - 1)));
    } catch (...) {
      return false;
    }
    if (R < 0)
      return false;
    NewParent.push_back(P);
    NewRank.push_back(R);
    Pos = Comma + 1;
  }
  std::vector<int64_t> OldParent = std::move(Parent);
  std::vector<int32_t> OldRank = std::move(Rank);
  Parent = std::move(NewParent);
  Rank = std::move(NewRank);
  if (!checkInvariants()) {
    Parent = std::move(OldParent);
    Rank = std::move(OldRank);
    return false;
  }
  return true;
}

bool UnionFind::checkInvariants() const {
  for (size_t I = 0; I != Parent.size(); ++I) {
    const int64_t P = Parent[I];
    if (P < 0 || static_cast<size_t>(P) >= Parent.size())
      return false;
    if (P != static_cast<int64_t>(I) && Rank[P] < Rank[I])
      return false;
  }
  // No cycles other than self-loops: repOf must terminate; walk with a
  // step bound.
  for (size_t I = 0; I != Parent.size(); ++I) {
    int64_t X = static_cast<int64_t>(I);
    size_t Steps = 0;
    while (Parent[X] != X) {
      X = Parent[X];
      if (++Steps > Parent.size())
        return false;
    }
  }
  return true;
}
