//===- adt/Accumulator.cpp - The paper's running example --------------------===//

#include "adt/Accumulator.h"

using namespace comlat;
using namespace comlat::dsl;

AccumulatorSig::AccumulatorSig() {
  Increment = Sig.addMethod("increment", 1, /*HasRet=*/false,
                            /*Mutating=*/true);
  Read = Sig.addMethod("read", 0, /*HasRet=*/true, /*Mutating=*/false);
}

const AccumulatorSig &comlat::accumulatorSig() {
  static const AccumulatorSig S;
  return S;
}

const CommSpec &comlat::accumulatorSpec() {
  static const CommSpec Spec = [] {
    const AccumulatorSig &S = accumulatorSig();
    CommSpec Out(&S.Sig, "accumulator");
    Out.set(S.Increment, S.Increment, top());
    Out.set(S.Increment, S.Read, bottom());
    Out.set(S.Read, S.Read, top());
    return Out;
  }();
  return Spec;
}

TxAccumulator::~TxAccumulator() = default;

namespace {

class LockedAccumulator : public TxAccumulator {
public:
  LockedAccumulator()
      : Scheme(accumulatorSpec()), Manager(&Scheme, "accumulator-locks") {}

  bool increment(Transaction &Tx, int64_t Amount) override {
    const AccumulatorSig &S = accumulatorSig();
    const std::vector<Value> Args = {Value::integer(Amount)};
    if (!Manager.acquirePre(Tx, S.Increment, Args))
      return false;
    {
      std::lock_guard<std::mutex> Guard(M);
      Sum += Amount;
    }
    Tx.addUndo([this, Amount] {
      std::lock_guard<std::mutex> Guard(M);
      Sum -= Amount;
    });
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(S.Increment, Args, Value::none()));
    return true;
  }

  bool read(Transaction &Tx, int64_t &Res) override {
    const AccumulatorSig &S = accumulatorSig();
    if (!Manager.acquirePre(Tx, S.Read, {}))
      return false;
    {
      std::lock_guard<std::mutex> Guard(M);
      Res = Sum;
    }
    if (!Manager.acquirePost(Tx, S.Read, {}, Value::integer(Res)))
      return false;
    if (Tx.recording())
      Tx.recordInvocation(tag(),
                          Invocation(S.Read, {}, Value::integer(Res)));
    return true;
  }

  int64_t value() const override {
    std::lock_guard<std::mutex> Guard(M);
    return Sum;
  }
  const char *schemeName() const override { return "accumulator-locks"; }

private:
  LockScheme Scheme;
  AbstractLockManager Manager;
  mutable std::mutex M;
  int64_t Sum = 0;
};

class AccumulatorGateTarget : public GateTarget {
public:
  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const AccumulatorSig &S = accumulatorSig();
    if (Method == S.Increment) {
      const int64_t Amount = Args[0].asInt();
      Sum += Amount;
      Actions.push_back(GateAction{[this, Amount] { Sum -= Amount; },
                                   [this, Amount] { Sum += Amount; }});
      return Value::none();
    }
    assert(Method == S.Read && "unknown accumulator method");
    return Value::integer(Sum);
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    COMLAT_UNREACHABLE("accumulator has no state functions");
  }

  std::string gateSignature() const override { return std::to_string(Sum); }

  // Privatization: increment's whole abstract effect is one addition to
  // the single sum cell (slot 0).
  bool privSupported(MethodId M) const override {
    return M == accumulatorSig().Increment;
  }
  void privDelta(MethodId M, ValueSpan Args, int64_t &Slot,
                 int64_t &Amount) override {
    assert(M == accumulatorSig().Increment && "not privatizable");
    Slot = 0;
    Amount = Args[0].asInt();
  }
  void privApplyDelta(int64_t Slot, int64_t Amount) override { Sum += Amount; }
  Invocation privInvocation(int64_t Slot, int64_t Amount) const override {
    return Invocation(accumulatorSig().Increment, {Value::integer(Amount)});
  }

  int64_t sum() const { return Sum; }

private:
  int64_t Sum = 0;
};

class GatedAccumulator : public TxAccumulator {
public:
  explicit GatedAccumulator(bool Privatize)
      : Keeper(&accumulatorSpec(), &Target,
               Privatize ? "accumulator-privatized" : "accumulator-gatekeeper",
               Privatize) {
    // All three conditions fold to constants when compiled (top/bottom),
    // and constant conditions are not key-separable — the read/increment
    // conflict is through the one shared sum — so admission stays on the
    // single-stripe path.
    assert(!Keeper.striped() && "accumulator conditions are not separable");
    assert(Keeper.privatized() == Privatize &&
           "increment must classify as privatizable");
  }

  bool increment(Transaction &Tx, int64_t Amount) override {
    const AccumulatorSig &S = accumulatorSig();
    const Value Arg = Value::integer(Amount);
    Value Ret;
    if (!Keeper.invoke(Tx, S.Increment, ValueSpan(&Arg, 1), Ret))
      return false;
    if (Tx.recording())
      Tx.recordInvocation(tag(),
                          Invocation(S.Increment, ValueSpan(&Arg, 1), Ret));
    return true;
  }

  bool read(Transaction &Tx, int64_t &Res) override {
    const AccumulatorSig &S = accumulatorSig();
    Value Ret;
    if (!Keeper.invoke(Tx, S.Read, {}, Ret))
      return false;
    Res = Ret.asInt();
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(S.Read, {}, Ret));
    return true;
  }

  int64_t value() const override {
    // Quiesced read: fold outstanding committed privatized deltas into the
    // master first (no-op when privatization is off).
    Keeper.mergePrivatizedQuiesced();
    return Target.sum();
  }
  const char *schemeName() const override { return Keeper.name(); }

private:
  AccumulatorGateTarget Target;
  mutable ForwardGatekeeper Keeper;
};

} // namespace

std::unique_ptr<TxAccumulator> comlat::makeLockedAccumulator() {
  return std::make_unique<LockedAccumulator>();
}

std::unique_ptr<TxAccumulator> comlat::makeGatedAccumulator() {
  return std::make_unique<GatedAccumulator>(/*Privatize=*/false);
}

std::unique_ptr<TxAccumulator> comlat::makePrivatizedAccumulator() {
  return std::make_unique<GatedAccumulator>(/*Privatize=*/true);
}

ValidationHarness comlat::accumulatorValidationHarness() {
  ValidationHarness Harness;
  Harness.MakeTarget = [] {
    return std::make_unique<AccumulatorGateTarget>();
  };
  Harness.RandomArgs = [](Rng &R, MethodId M) {
    if (M == accumulatorSig().Read)
      return std::vector<Value>{};
    return std::vector<Value>{
        Value::integer(static_cast<int64_t>(R.nextBelow(5)))};
  };
  return Harness;
}

Value AccumulatorReplayer::replay(uintptr_t StructureTag,
                                  const Invocation &Inv) {
  const AccumulatorSig &S = accumulatorSig();
  if (Inv.Method == S.Increment) {
    Sum += Inv.Args[0].asInt();
    return Value::none();
  }
  assert(Inv.Method == S.Read && "unknown accumulator method");
  return Value::integer(Sum);
}
