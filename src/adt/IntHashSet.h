//===- adt/IntHashSet.h - Open-addressing integer set -----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact linear-probing hash set of int64 keys, the concrete
/// representation behind the boosted set of §2.3/§5. Tombstone-free:
/// erase uses backward-shift deletion, keeping probe sequences dense.
/// Not thread-safe; the boosted wrappers serialize concrete access.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_INTHASHSET_H
#define COMLAT_ADT_INTHASHSET_H

#include "support/Compiler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace comlat {

/// Open-addressing set of int64 keys.
class IntHashSet {
public:
  explicit IntHashSet(size_t InitialCapacity = 16);

  /// Inserts \p Key; returns true if the set changed (key was absent).
  bool insert(int64_t Key);

  /// Erases \p Key; returns true if the set changed (key was present).
  bool erase(int64_t Key);

  /// Membership test.
  bool contains(int64_t Key) const;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  void clear();

  /// Elements in ascending order (for state comparison in tests).
  std::vector<int64_t> sortedElements() const;

  /// Canonical abstract-state fingerprint: sorted elements joined by ','.
  std::string signature() const;

private:
  static uint64_t hashKey(int64_t Key);
  void grow();
  size_t probeFor(int64_t Key) const;

  struct Cell {
    int64_t Key = 0;
    bool Used = false;
  };
  std::vector<Cell> Cells;
  size_t Count = 0;
};

} // namespace comlat

#endif // COMLAT_ADT_INTHASHSET_H
