//===- adt/BoostedUnionFind.h - Transactional union-find --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The union-find signature, its commutativity specification (Fig. 5), and
/// transactional variants:
///
///  * uf-gk: the *generic* general gatekeeper of §3.3.2, evaluating
///    rep(s1, c) by rolling the structure back to the historical state;
///  * uf-gk-spec: the paper's hand-specialized gatekeeper with find-reps
///    and loser-rep logs (plus uncompressed path checks instead of
///    rollback for the find side);
///  * uf-ml: memory-level STM over the concrete elements, where path
///    compression makes semantically read-only finds conflict (§1);
///  * direct: unprotected sequential baseline.
///
/// Deviation from Fig. 5, documented in DESIGN.md: the union~union
/// condition here protects *both* representatives involved in the first
/// union, not just the loser. The paper's loser-only condition admits
/// reorderings that change which element ends up as representative when a
/// later union touches the winner of an equal-rank union — observable
/// through find, and flagged by this repository's serializability oracle.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_BOOSTEDUNIONFIND_H
#define COMLAT_ADT_BOOSTEDUNIONFIND_H

#include "adt/UnionFind.h"
#include "core/Spec.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"
#include "runtime/SpecValidator.h"

#include <map>
#include <memory>
#include <mutex>

namespace comlat {

/// Method and state-function ids of the union-find ADT.
struct UfSig {
  DataTypeSig Sig{"unionfind"};
  MethodId Union, Find, Create;
  StateFnId Rep, Loser, Winner;

  UfSig();
};

const UfSig &ufSig();

/// Fig. 5 (with the both-representatives strengthening noted above). Not
/// ONLINE-CHECKABLE: rep(s1, c) evaluates a function of the first state on
/// second-invocation arguments, so a general gatekeeper is required.
const CommSpec &ufSpec();

/// Transactional union-find interface; false return = conflict.
class TxUnionFind {
public:
  virtual ~TxUnionFind();

  virtual bool find(Transaction &Tx, int64_t X, int64_t &Rep) = 0;
  virtual bool unite(Transaction &Tx, int64_t A, int64_t B,
                     bool &Changed) = 0;
  virtual bool create(Transaction &Tx, int64_t &Id) = 0;

  virtual std::string signature() const = 0;
  virtual size_t numElements() const = 0;
  virtual const char *schemeName() const = 0;

  /// Exact concrete state (UnionFind::dumpState) for durability snapshots;
  /// empty when the scheme does not support snapshotting. Call only from a
  /// quiesced state (no in-flight transactions).
  virtual std::string dumpState() const { return {}; }

  /// Restores a dumpState() encoding; false when unsupported or malformed.
  /// Call only from a quiesced state.
  virtual bool restoreState(const std::string &Dump) {
    (void)Dump;
    return false;
  }

  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Unprotected sequential baseline (single-threaded use only).
std::unique_ptr<TxUnionFind> makeDirectUnionFind(size_t NumElements);

/// uf-gk: generic general gatekeeper over the Fig. 5 spec.
std::unique_ptr<TxUnionFind> makeGatedUnionFind(size_t NumElements);

/// uf-gk-spec: the paper's specialized find-reps / loser-rep gatekeeper.
std::unique_ptr<TxUnionFind> makeSpecializedUnionFind(size_t NumElements);

/// uf-ml: object-granularity STM over the concrete elements.
std::unique_ptr<TxUnionFind> makeStmUnionFind(size_t NumElements);

/// Validation bindings for union-find specifications over \p NumElements
/// initial elements.
ValidationHarness ufValidationHarness(size_t NumElements);

/// The paper's exact Fig. 5 union~union condition (loser-only). Kept for
/// the validator tests: in the equal-rank tie case it admits reorderings
/// that change representative identity, which validateSpec demonstrates
/// with a concrete counterexample — the reason ufSpec() strengthens it.
CommSpec paperExactUfSpec();

/// Replays union-find histories for the serializability oracle.
class UfReplayer : public Replayer {
public:
  explicit UfReplayer(size_t NumElements) : UF(NumElements) {}

  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override { return UF.signature(); }

private:
  UnionFind UF;
};

} // namespace comlat

#endif // COMLAT_ADT_BOOSTEDUNIONFIND_H
