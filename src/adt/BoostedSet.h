//===- adt/BoostedSet.h - Transactional set variants ------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boosted set: one concrete IntHashSet behind a pluggable conflict
/// detector. Variants correspond to the schemes compared in the paper's
/// set microbenchmark (Table 2): a direct unprotected set (sequential
/// baseline), abstract-lock-based sets generated from any SIMPLE point of
/// the set lattice (global / exclusive / read-write / partitioned), and a
/// forward-gatekept set implementing the precise specification of Fig. 2.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_BOOSTEDSET_H
#define COMLAT_ADT_BOOSTEDSET_H

#include "adt/IntHashSet.h"
#include "adt/SetSpecs.h"
#include "runtime/AbstractLockManager.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"
#include "runtime/SpecValidator.h"

#include <memory>
#include <mutex>

namespace comlat {

/// Transactional set interface shared by all scheme variants. Methods
/// return false (with the transaction marked failed) on conflict;
/// otherwise \p Res receives the method's boolean result.
class TxSet {
public:
  virtual ~TxSet();

  virtual bool add(Transaction &Tx, int64_t Key, bool &Res) = 0;
  virtual bool remove(Transaction &Tx, int64_t Key, bool &Res) = 0;
  virtual bool contains(Transaction &Tx, int64_t Key, bool &Res) = 0;

  /// Abstract-state fingerprint; call only when quiesced.
  virtual std::string signature() const = 0;

  virtual const char *schemeName() const = 0;

  /// Tag used in recorded histories (tests).
  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Unprotected sequential set: the baseline for overhead ratios.
std::unique_ptr<TxSet> makeDirectSet();

/// Abstract-lock set from a SIMPLE point of the set lattice.
/// \p Partitions is used when the spec's clauses go through part();
/// part(k) = k mod Partitions (non-negative).
std::unique_ptr<TxSet> makeLockedSet(const CommSpec &Spec,
                                     unsigned Partitions = 16);

/// Forward-gatekept set from the precise specification (or any
/// ONLINE-CHECKABLE point).
std::unique_ptr<TxSet> makeGatedSet(const CommSpec &Spec);

/// A bare set GateTarget (for the spec validator and custom gatekeepers).
std::unique_ptr<GateTarget> makeSetGateTarget();

/// Validation bindings for set specifications: fresh sets and random
/// add/remove/contains arguments over a small key space.
ValidationHarness setValidationHarness(unsigned KeySpace = 4);

/// Replays set histories for the serializability oracle; handles histories
/// with a single set structure (any tag).
class SetReplayer : public Replayer {
public:
  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override { return Set.signature(); }

private:
  IntHashSet Set;
};

} // namespace comlat

#endif // COMLAT_ADT_BOOSTEDSET_H
