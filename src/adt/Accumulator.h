//===- adt/Accumulator.h - The paper's running example ----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accumulator ADT of §3.2 (Figs. 7-8): increment(x) adds to a sum,
/// read() returns it. increments commute with increments, reads with
/// reads, but increments never commute with reads. The generated abstract
/// locking scheme reduces to one structure lock with two modes — the
/// reduced compatibility matrix of Fig. 8(b) — which the tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_ACCUMULATOR_H
#define COMLAT_ADT_ACCUMULATOR_H

#include "core/Spec.h"
#include "runtime/AbstractLockManager.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"
#include "runtime/SpecValidator.h"

#include <memory>
#include <mutex>

namespace comlat {

/// Method ids of the accumulator ADT.
struct AccumulatorSig {
  DataTypeSig Sig{"accumulator"};
  MethodId Increment, Read;

  AccumulatorSig();
};

const AccumulatorSig &accumulatorSig();

/// Fig. 7: increment ~ increment and read ~ read are true; increment ~
/// read is false. SIMPLE.
const CommSpec &accumulatorSpec();

/// Transactional accumulator interface; false return = conflict.
class TxAccumulator {
public:
  virtual ~TxAccumulator();

  virtual bool increment(Transaction &Tx, int64_t Amount) = 0;
  virtual bool read(Transaction &Tx, int64_t &Res) = 0;

  /// Current sum (quiesced).
  virtual int64_t value() const = 0;
  virtual const char *schemeName() const = 0;

  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Abstract-lock accumulator from the generated scheme.
std::unique_ptr<TxAccumulator> makeLockedAccumulator();

/// Gatekept accumulator (the spec is SIMPLE, so this exists purely as the
/// higher-overhead point of the same lattice element; used in ablations).
std::unique_ptr<TxAccumulator> makeGatedAccumulator();

/// Gatekept accumulator with privatized coalescing: increments divert to
/// per-worker replicas (runtime/Privatizer.h) and merge on the first read
/// or at quiesced boundaries.
std::unique_ptr<TxAccumulator> makePrivatizedAccumulator();

/// Validation bindings for accumulator specifications.
ValidationHarness accumulatorValidationHarness();

/// Replays accumulator histories for the serializability oracle.
class AccumulatorReplayer : public Replayer {
public:
  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override { return std::to_string(Sum); }

private:
  int64_t Sum = 0;
};

} // namespace comlat

#endif // COMLAT_ADT_ACCUMULATOR_H
