//===- adt/BoostedKdTree.h - Transactional kd-tree variants ------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kd-tree's signature, its commutativity specification (Fig. 4), and
/// transactional variants: direct (sequential baseline), kd-gk (forward
/// gatekeeper over the precise spec — the ONLINE-CHECKABLE showcase of
/// §3.3.1, logging `(x, dist(x, r))` per nearest query) and kd-ml
/// (memory-level STM over the concrete tree nodes — the paper's baseline
/// whose bounding-box writes serialize semantically commuting operations).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_BOOSTEDKDTREE_H
#define COMLAT_ADT_BOOSTEDKDTREE_H

#include "adt/KdTree.h"
#include "core/Spec.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"
#include "runtime/SpecValidator.h"

#include <memory>
#include <mutex>

namespace comlat {

/// Method and state-function ids of the kd-tree ADT.
struct KdSig {
  DataTypeSig Sig{"kdtree"};
  MethodId Add, Remove, Nearest;
  /// dist(a, b): pure — points are immutable, so the metric is a function
  /// of the ids alone.
  StateFnId Dist;

  KdSig();
};

const KdSig &kdSig();

/// Fig. 4: the kd-tree commutativity specification. ONLINE-CHECKABLE but
/// not SIMPLE ("there is no straightforward SIMPLE specification that does
/// not merely prevent add and nearest from executing concurrently", §5).
/// Deviation: the nearest~remove condition carries the same distance guard
/// as nearest~add; Fig. 4's (a != b and r1 != b) alone is refuted by the
/// randomized condition validator in the remove-first orientation (see
/// the comment in BoostedKdTree.cpp and DESIGN.md).
const CommSpec &kdSpec();

/// Transactional kd-tree interface; false return = conflict (Tx failed).
class TxKdTree {
public:
  virtual ~TxKdTree();

  virtual bool add(Transaction &Tx, int64_t Id, bool &Changed) = 0;
  virtual bool remove(Transaction &Tx, int64_t Id, bool &Changed) = 0;
  virtual bool nearest(Transaction &Tx, int64_t Query, int64_t &Res) = 0;

  /// Abstract state (quiesced).
  virtual std::string signature() const = 0;
  virtual size_t size() const = 0;
  virtual const char *schemeName() const = 0;

  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Unprotected sequential kd-tree (overhead baseline).
std::unique_ptr<TxKdTree> makeDirectKdTree(const PointStore *Store);

/// kd-gk: forward gatekeeper over the Fig. 4 specification.
std::unique_ptr<TxKdTree> makeGatedKdTree(const PointStore *Store);

/// kd-ml: object-granularity STM over the concrete tree nodes.
std::unique_ptr<TxKdTree> makeStmKdTree(const PointStore *Store);

/// Validation bindings for kd-tree specifications: fresh trees over
/// \p Store (whose points form the argument pool). \p Store must outlive
/// the harness.
ValidationHarness kdValidationHarness(const PointStore *Store);

/// Replays kd-tree histories for the serializability oracle.
class KdReplayer : public Replayer {
public:
  explicit KdReplayer(const PointStore *Store) : Tree(Store) {}

  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override { return Tree.signature(); }

private:
  KdTree Tree;
};

} // namespace comlat

#endif // COMLAT_ADT_BOOSTEDKDTREE_H
