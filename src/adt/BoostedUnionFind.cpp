//===- adt/BoostedUnionFind.cpp - Transactional union-find ------------------===//

#include "adt/BoostedUnionFind.h"

#include <algorithm>

using namespace comlat;
using namespace comlat::dsl;

UfSig::UfSig() {
  // union returns whether it merged two sets (conditions never mention it,
  // but callers need the answer and must learn it atomically).
  Union = Sig.addMethod("union", 2, /*HasRet=*/true, /*Mutating=*/true);
  Find = Sig.addMethod("find", 1, /*HasRet=*/true, /*Mutating=*/false);
  Create = Sig.addMethod("create", 0, /*HasRet=*/true, /*Mutating=*/true);
  Rep = Sig.addStateFn("rep", 1, /*Pure=*/false);
  Loser = Sig.addStateFn("loser", 2, /*Pure=*/false);
  Winner = Sig.addStateFn("winner", 2, /*Pure=*/false);
}

const UfSig &comlat::ufSig() {
  static const UfSig S;
  return S;
}

const CommSpec &comlat::ufSpec() {
  static const CommSpec Spec = [] {
    const UfSig &S = ufSig();
    CommSpec Out(&S.Sig, "unionfind-general");
    // Shorthands: the first union's loser/winner in its pre-state.
    const TermPtr Loser1 =
        apply(S.Loser, StateRef::S1, {arg1(0), arg1(1)});
    const TermPtr Winner1 =
        apply(S.Winner, StateRef::S1, {arg1(0), arg1(1)});
    const TermPtr RepC = apply(S.Rep, StateRef::S1, {arg2(0)});
    const TermPtr RepD = apply(S.Rep, StateRef::S1, {arg2(1)});
    // (1) union ~ union: the second union's arguments resolve (in the
    // first union's pre-state) to neither representative the first union
    // merged. See the header for why both sides are protected.
    Out.set(S.Union, S.Union,
            conj({ne(RepC, Loser1), ne(RepD, Loser1), ne(RepC, Winner1),
                  ne(RepD, Winner1)}));
    // (2) union ~ find: the find would not have returned the loser.
    Out.set(S.Union, S.Find,
            ne(apply(S.Rep, StateRef::S1, {arg2(0)}), Loser1));
    // (3, 5, 6) create commutes with nothing.
    Out.set(S.Union, S.Create, bottom());
    Out.set(S.Find, S.Create, bottom());
    Out.set(S.Create, S.Create, bottom());
    // (4) find ~ find: always (path compression notwithstanding).
    Out.set(S.Find, S.Find, top());
    return Out;
  }();
  return Spec;
}

TxUnionFind::~TxUnionFind() = default;

namespace {

/// GateTarget adapter over the sequential forest.
class UfGateTarget : public GateTarget {
public:
  explicit UfGateTarget(size_t NumElements) : UF(NumElements) {}

  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const UfSig &S = ufSig();
    if (Method == S.Find) {
      int64_t Rep = UfNone;
      const UnionFind::Status St =
          UF.find(Args[0].asInt(), nullptr, &Actions, Rep);
      assert(St == UnionFind::Status::Ok && "unprobed op cannot conflict");
      (void)St;
      return Value::integer(Rep);
    }
    if (Method == S.Union) {
      bool Changed = false;
      const UnionFind::Status St =
          UF.unite(Args[0].asInt(), Args[1].asInt(), nullptr, &Actions,
                   Changed);
      assert(St == UnionFind::Status::Ok && "unprobed op cannot conflict");
      (void)St;
      return Value::boolean(Changed);
    }
    assert(Method == S.Create && "unknown union-find method");
    const int64_t Id = UF.createElement();
    Actions.push_back(GateAction{[this] { UF.destroyLastElement(); },
                                 [this] { UF.createElement(); }});
    return Value::integer(Id);
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    const UfSig &S = ufSig();
    if (F == S.Rep)
      return Value::integer(UF.repOf(Args[0].asInt()));
    if (F == S.Loser)
      return Value::integer(UF.loserOf(Args[0].asInt(), Args[1].asInt()));
    assert(F == S.Winner && "unknown union-find state function");
    return Value::integer(UF.winnerOf(Args[0].asInt(), Args[1].asInt()));
  }

  std::string gateSignature() const override { return UF.signature(); }

  const UnionFind &forest() const { return UF; }
  /// Quiesced-only mutable access for snapshot restore.
  UnionFind &mutableForest() { return UF; }

private:
  UnionFind UF;
};

/// Shared invocation-recording helper.
static void recordUf(Transaction &Tx, uintptr_t Tag, MethodId M,
                     ValueSpan Args, Value Ret) {
  if (Tx.recording())
    Tx.recordInvocation(Tag, Invocation(M, Args, Ret));
}

/// Unprotected sequential baseline.
class DirectUnionFind : public TxUnionFind {
public:
  explicit DirectUnionFind(size_t NumElements) : UF(NumElements) {}

  bool find(Transaction &Tx, int64_t X, int64_t &Rep) override {
    UF.find(X, nullptr, nullptr, Rep);
    recordUf(Tx, tag(), ufSig().Find, {Value::integer(X)},
             Value::integer(Rep));
    return true;
  }
  bool unite(Transaction &Tx, int64_t A, int64_t B, bool &Changed) override {
    UF.unite(A, B, nullptr, nullptr, Changed);
    recordUf(Tx, tag(), ufSig().Union,
             {Value::integer(A), Value::integer(B)},
             Value::boolean(Changed));
    return true;
  }
  bool create(Transaction &Tx, int64_t &Id) override {
    Id = UF.createElement();
    recordUf(Tx, tag(), ufSig().Create, {}, Value::integer(Id));
    return true;
  }
  std::string signature() const override { return UF.signature(); }
  size_t numElements() const override { return UF.numElements(); }
  const char *schemeName() const override { return "uf-direct"; }

private:
  UnionFind UF;
};

/// uf-gk: generic general gatekeeper.
class GatedUnionFind : public TxUnionFind {
public:
  explicit GatedUnionFind(size_t NumElements)
      : Target(NumElements), Keeper(&ufSpec(), &Target, "uf-gk") {
    // General gatekeepers never stripe: rollback evaluation needs one
    // totally-ordered mutation log to rewind (the conditions themselves
    // are still compiled; s1-applies go through the rollback resolver).
    assert(!Keeper.striped() && "general gatekeepers are single-stripe");
  }

  bool find(Transaction &Tx, int64_t X, int64_t &Rep) override {
    Value Ret;
    if (!Keeper.invoke(Tx, ufSig().Find, {Value::integer(X)}, Ret))
      return false;
    Rep = Ret.asInt();
    recordUf(Tx, tag(), ufSig().Find, {Value::integer(X)}, Ret);
    return true;
  }
  bool unite(Transaction &Tx, int64_t A, int64_t B, bool &Changed) override {
    Value Ret;
    if (!Keeper.invoke(Tx, ufSig().Union,
                       {Value::integer(A), Value::integer(B)}, Ret))
      return false;
    Changed = Ret.asBool();
    recordUf(Tx, tag(), ufSig().Union,
             {Value::integer(A), Value::integer(B)}, Ret);
    return true;
  }
  bool create(Transaction &Tx, int64_t &Id) override {
    Value Ret;
    if (!Keeper.invoke(Tx, ufSig().Create, {}, Ret))
      return false;
    Id = Ret.asInt();
    recordUf(Tx, tag(), ufSig().Create, {}, Ret);
    return true;
  }
  std::string signature() const override {
    return Target.forest().signature();
  }
  size_t numElements() const override {
    return Target.forest().numElements();
  }
  const char *schemeName() const override { return "uf-gk"; }

  std::string dumpState() const override {
    return Target.forest().dumpState();
  }
  bool restoreState(const std::string &Dump) override {
    return Target.mutableForest().restoreState(Dump);
  }

  const Gatekeeper &keeper() const { return Keeper; }

private:
  UfGateTarget Target;
  GeneralGatekeeper Keeper;
};

/// uf-gk-spec: the paper's specialized gatekeeper (§3.3.2). Maintains, per
/// active transaction, the representatives returned by its finds
/// (find-reps) and the loser/winner representatives of its unions
/// (loser-rep); checks use uncompressed parent chains in the current state
/// instead of rollback: a chain passing through a representative another
/// live transaction displaced (or observed, for unions) is a conflict.
class SpecializedUnionFind : public TxUnionFind, public ConflictDetector {
public:
  explicit SpecializedUnionFind(size_t NumElements) : UF(NumElements) {}

  bool find(Transaction &Tx, int64_t X, int64_t &Rep) override {
    Tx.touch(this);
    std::lock_guard<std::mutex> Guard(Gate);
    TxRec &Rec = recFor(Tx.id());
    if (anyOtherCreates(Tx.id()))
      return conflict(Tx);
    // The find's answer changes across an active union exactly when its
    // uncompressed chain crosses that union's loser.
    UF.chainOf(X, Chain);
    for (const auto &[Id, Other] : Recs) {
      if (Id == Tx.id())
        continue;
      for (const int64_t Node : Chain)
        if (contains(Other.Losers, Node))
          return conflict(Tx);
    }
    UF.find(X, nullptr, &Rec.Actions, Rep);
    Rec.FindReps.push_back(Rep);
    recordUf(Tx, txTag(), ufSig().Find, {Value::integer(X)},
             Value::integer(Rep));
    return true;
  }

  bool unite(Transaction &Tx, int64_t A, int64_t B, bool &Changed) override {
    Tx.touch(this);
    std::lock_guard<std::mutex> Guard(Gate);
    TxRec &Rec = recFor(Tx.id());
    if (anyOtherCreates(Tx.id()))
      return conflict(Tx);
    // Chains may not pass through any representative another live
    // transaction merged (loser or winner).
    for (const int64_t End : {A, B}) {
      UF.chainOf(End, Chain);
      for (const auto &[Id, Other] : Recs) {
        if (Id == Tx.id())
          continue;
        for (const int64_t Node : Chain)
          if (contains(Other.Touched, Node))
            return conflict(Tx);
      }
    }
    const int64_t Loser = UF.loserOf(A, B);
    const int64_t Winner = UF.winnerOf(A, B);
    // The union may not displace a representative another live
    // transaction's find observed.
    if (Loser != UfNone) {
      for (const auto &[Id, Other] : Recs) {
        if (Id == Tx.id())
          continue;
        if (contains(Other.FindReps, Loser))
          return conflict(Tx);
      }
    }
    UF.unite(A, B, nullptr, &Rec.Actions, Changed);
    if (Loser != UfNone) {
      Rec.Losers.push_back(Loser);
      Rec.Touched.push_back(Loser);
      Rec.Touched.push_back(Winner);
    }
    recordUf(Tx, txTag(), ufSig().Union,
             {Value::integer(A), Value::integer(B)},
             Value::boolean(Changed));
    return true;
  }

  bool create(Transaction &Tx, int64_t &Id) override {
    Tx.touch(this);
    std::lock_guard<std::mutex> Guard(Gate);
    TxRec &Rec = recFor(Tx.id());
    // create commutes with nothing: any other live activity conflicts.
    for (const auto &[OtherId, Other] : Recs)
      if (OtherId != Tx.id() && Other.active())
        return conflict(Tx);
    Id = UF.createElement();
    Rec.Actions.push_back(GateAction{[this] { UF.destroyLastElement(); },
                                     [this] { UF.createElement(); }});
    ++Rec.Creates;
    recordUf(Tx, txTag(), ufSig().Create, {}, Value::integer(Id));
    return true;
  }

  void undoFor(Transaction &Tx) override {
    std::lock_guard<std::mutex> Guard(Gate);
    for (auto &[Id, Rec] : Recs) {
      if (Id != Tx.id())
        continue;
      GateActionList &Acts = Rec.Actions;
      for (size_t I = Acts.size(); I != 0; --I)
        Acts[I - 1].Undo();
      break;
    }
    retireRec(Tx.id());
  }

  void release(Transaction &Tx, bool Committed) override {
    std::lock_guard<std::mutex> Guard(Gate);
    retireRec(Tx.id());
  }

  const char *name() const override { return "uf-gk-spec"; }
  const char *schemeName() const override { return "uf-gk-spec"; }
  std::string signature() const override { return UF.signature(); }
  size_t numElements() const override { return UF.numElements(); }

  uint64_t numConflicts() const { return Conflicts; }

private:
  struct TxRec {
    GateActionList Actions;
    std::vector<int64_t> Losers;
    std::vector<int64_t> Touched;
    std::vector<int64_t> FindReps;
    unsigned Creates = 0;

    bool active() const {
      return Creates != 0 || !Actions.empty() || !FindReps.empty() ||
             !Touched.empty();
    }
  };

  uintptr_t txTag() const {
    return reinterpret_cast<uintptr_t>(static_cast<const TxUnionFind *>(this));
  }

  static bool contains(const std::vector<int64_t> &Vec, int64_t V) {
    return std::find(Vec.begin(), Vec.end(), V) != Vec.end();
  }

  bool anyOtherCreates(TxId Self) const {
    for (const auto &[Id, Rec] : Recs)
      if (Id != Self && Rec.Creates != 0)
        return true;
    return false;
  }

  bool conflict(Transaction &Tx) {
    ++Conflicts;
    Tx.fail(AbortCause::Gatekeeper);
    return false;
  }

  /// Finds or creates the record of \p Id. Records live in a flat vector
  /// (live transactions are few) and retire into a free pool with their
  /// vector/action capacities intact, so the steady state of a pooled
  /// transaction stream allocates nothing here.
  TxRec &recFor(TxId Id) {
    for (auto &[RecId, Rec] : Recs)
      if (RecId == Id)
        return Rec;
    if (!Pool.empty()) {
      Recs.emplace_back(Id, std::move(Pool.back()));
      Pool.pop_back();
    } else {
      Recs.emplace_back(Id, TxRec{});
    }
    return Recs.back().second;
  }

  /// Retires \p Id's record (if any) into the pool, keeping capacity.
  void retireRec(TxId Id) {
    for (size_t I = 0; I != Recs.size(); ++I) {
      if (Recs[I].first != Id)
        continue;
      TxRec &Rec = Recs[I].second;
      Rec.Actions.clear();
      Rec.Losers.clear();
      Rec.Touched.clear();
      Rec.FindReps.clear();
      Rec.Creates = 0;
      Pool.push_back(std::move(Rec));
      Recs[I] = std::move(Recs.back());
      Recs.pop_back();
      return;
    }
  }

  std::mutex Gate;
  UnionFind UF;
  std::vector<std::pair<TxId, TxRec>> Recs;
  std::vector<TxRec> Pool;
  std::vector<int64_t> Chain;
  uint64_t Conflicts = 0;
};

/// uf-ml: object-granularity STM; every parent/rank touch is an object
/// access, so path compression serializes concurrent finds.
class StmUnionFind : public TxUnionFind {
public:
  explicit StmUnionFind(size_t NumElements)
      : UF(NumElements), Stm("uf-ml") {}

  bool find(Transaction &Tx, int64_t X, int64_t &Rep) override {
    StmProbe Probe(Stm, Tx);
    std::lock_guard<std::mutex> Guard(M);
    GateActionList Acts;
    const UnionFind::Status St = UF.find(X, &Probe, &Acts, Rep);
    registerUndos(Tx, Acts);
    if (St == UnionFind::Status::Conflict)
      return false;
    recordUf(Tx, tag(), ufSig().Find, {Value::integer(X)},
             Value::integer(Rep));
    return true;
  }
  bool unite(Transaction &Tx, int64_t A, int64_t B, bool &Changed) override {
    StmProbe Probe(Stm, Tx);
    std::lock_guard<std::mutex> Guard(M);
    GateActionList Acts;
    const UnionFind::Status St = UF.unite(A, B, &Probe, &Acts, Changed);
    registerUndos(Tx, Acts);
    if (St == UnionFind::Status::Conflict)
      return false;
    recordUf(Tx, tag(), ufSig().Union,
             {Value::integer(A), Value::integer(B)},
             Value::boolean(Changed));
    return true;
  }
  bool create(Transaction &Tx, int64_t &Id) override {
    std::lock_guard<std::mutex> Guard(M);
    Id = UF.createElement();
    Tx.addUndo([this] {
      std::lock_guard<std::mutex> G(M);
      UF.destroyLastElement();
    });
    recordUf(Tx, tag(), ufSig().Create, {}, Value::integer(Id));
    return true;
  }
  std::string signature() const override {
    std::lock_guard<std::mutex> Guard(M);
    return UF.signature();
  }
  size_t numElements() const override {
    std::lock_guard<std::mutex> Guard(M);
    return UF.numElements();
  }
  const char *schemeName() const override { return "uf-ml"; }

private:
  void registerUndos(Transaction &Tx, GateActionList &Acts) {
    // Move the (move-only) undo halves out of the action list; the redo
    // halves die with it (the STM scheme never replays).
    for (GateAction &A : Acts) {
      Tx.addUndo([this, Undo = std::move(A.Undo)] {
        std::lock_guard<std::mutex> G(M);
        Undo();
      });
    }
  }

  mutable std::mutex M;
  UnionFind UF;
  ObjectStm Stm;
};

} // namespace

std::unique_ptr<TxUnionFind> comlat::makeDirectUnionFind(size_t NumElements) {
  return std::make_unique<DirectUnionFind>(NumElements);
}

std::unique_ptr<TxUnionFind> comlat::makeGatedUnionFind(size_t NumElements) {
  return std::make_unique<GatedUnionFind>(NumElements);
}

std::unique_ptr<TxUnionFind>
comlat::makeSpecializedUnionFind(size_t NumElements) {
  return std::make_unique<SpecializedUnionFind>(NumElements);
}

std::unique_ptr<TxUnionFind> comlat::makeStmUnionFind(size_t NumElements) {
  return std::make_unique<StmUnionFind>(NumElements);
}

ValidationHarness comlat::ufValidationHarness(size_t NumElements) {
  assert(NumElements > 1 && "harness needs elements to merge");
  ValidationHarness Harness;
  Harness.MakeTarget = [NumElements] {
    return std::make_unique<UfGateTarget>(NumElements);
  };
  Harness.RandomArgs = [NumElements](Rng &R, MethodId M) {
    const UfSig &S = ufSig();
    if (M == S.Create)
      return std::vector<Value>{};
    std::vector<Value> Args = {
        Value::integer(static_cast<int64_t>(R.nextBelow(NumElements)))};
    if (M == S.Union)
      Args.push_back(
          Value::integer(static_cast<int64_t>(R.nextBelow(NumElements))));
    return Args;
  };
  return Harness;
}

CommSpec comlat::paperExactUfSpec() {
  const UfSig &S = ufSig();
  CommSpec Out = ufSpec();
  Out.setName("unionfind-fig5-exact");
  // Fig. 5 condition (1) verbatim: only the loser is protected.
  const TermPtr Loser1 = apply(S.Loser, StateRef::S1, {arg1(0), arg1(1)});
  Out.set(S.Union, S.Union,
          conj(ne(apply(S.Rep, StateRef::S1, {arg2(0)}), Loser1),
               ne(apply(S.Rep, StateRef::S1, {arg2(1)}), Loser1)));
  return Out;
}

Value UfReplayer::replay(uintptr_t StructureTag, const Invocation &Inv) {
  const UfSig &S = ufSig();
  if (Inv.Method == S.Find) {
    int64_t Rep = UfNone;
    UF.find(Inv.Args[0].asInt(), nullptr, nullptr, Rep);
    return Value::integer(Rep);
  }
  if (Inv.Method == S.Union) {
    bool Changed = false;
    UF.unite(Inv.Args[0].asInt(), Inv.Args[1].asInt(), nullptr, nullptr,
             Changed);
    return Value::boolean(Changed);
  }
  assert(Inv.Method == S.Create && "unknown union-find method");
  return Value::integer(UF.createElement());
}
