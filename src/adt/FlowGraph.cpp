//===- adt/FlowGraph.cpp - Flow network for preflow-push --------------------===//

#include "adt/FlowGraph.h"
#include "core/Lattice.h"

#include <algorithm>

using namespace comlat;
using namespace comlat::dsl;

FlowSig::FlowSig() {
  Relabel = Sig.addMethod("relabel", 1, /*HasRet=*/true, /*Mutating=*/true);
  PushFlow = Sig.addMethod("pushFlow", 2, /*HasRet=*/true, /*Mutating=*/true);
  GetNeighbors = Sig.addMethod("getNeighbors", 1, /*HasRet=*/true,
                               /*Mutating=*/false);
  Part = Sig.addStateFn("part", 1, /*Pure=*/true);
}

const FlowSig &comlat::flowSig() {
  static const FlowSig S;
  return S;
}

const CommSpec &comlat::mlFlowSpec() {
  static const CommSpec Spec = [] {
    const FlowSig &S = flowSig();
    CommSpec Out(&S.Sig, "flow-ml");
    // Mutators conflict with anything touching the same node; the
    // read-only getNeighbors commutes with itself. This is exactly
    // read/write locks on nodes, which the paper observes is the conflict
    // detection a transactional memory would perform here.
    Out.set(S.Relabel, S.Relabel, ne(arg1(0), arg2(0)));
    Out.set(S.Relabel, S.PushFlow,
            conj(ne(arg1(0), arg2(0)), ne(arg1(0), arg2(1))));
    Out.set(S.Relabel, S.GetNeighbors, ne(arg1(0), arg2(0)));
    Out.set(S.PushFlow, S.PushFlow,
            conj({ne(arg1(0), arg2(0)), ne(arg1(0), arg2(1)),
                  ne(arg1(1), arg2(0)), ne(arg1(1), arg2(1))}));
    Out.set(S.PushFlow, S.GetNeighbors,
            conj(ne(arg1(0), arg2(0)), ne(arg1(1), arg2(0))));
    Out.set(S.GetNeighbors, S.GetNeighbors, top());
    return Out;
  }();
  return Spec;
}

const CommSpec &comlat::exFlowSpec() {
  static const CommSpec Spec = [] {
    CommSpec Out = mlFlowSpec();
    Out.setName("flow-ex");
    // Strengthen: getNeighbors no longer commutes with itself on the same
    // node — read/write locks degrade to exclusive locks (§5).
    const FlowSig &S = flowSig();
    Out.set(S.GetNeighbors, S.GetNeighbors, ne(arg1(0), arg2(0)));
    return Out;
  }();
  return Spec;
}

const CommSpec &comlat::partFlowSpec() {
  static const CommSpec Spec =
      partitionSpec(mlFlowSpec(), flowSig().Part, "flow-part");
  return Spec;
}

//===----------------------------------------------------------------------===//
// FlowGraph
//===----------------------------------------------------------------------===//

FlowGraph::FlowGraph(unsigned NumNodes)
    : Adj(NumNodes), Height(NumNodes), Excess(NumNodes, 0) {
  for (std::atomic<int64_t> &H : Height)
    H.store(0, std::memory_order_relaxed);
}

void FlowGraph::addEdge(unsigned From, unsigned To, int64_t Cap) {
  assert(From < numNodes() && To < numNodes() && "bad endpoint");
  assert(From != To && "self loops are not useful for max-flow");
  assert(Cap >= 0 && "negative capacity");
  // Merge with an existing parallel edge.
  for (Edge &E : Adj[From]) {
    if (E.To == To) {
      E.ResCap += Cap;
      E.OrigCap += Cap;
      return;
    }
  }
  const unsigned FwdIdx = static_cast<unsigned>(Adj[From].size());
  const unsigned RevIdx = static_cast<unsigned>(Adj[To].size());
  Adj[From].push_back(Edge{To, RevIdx, Cap, Cap});
  Adj[To].push_back(Edge{From, FwdIdx, 0, 0});
}

void FlowGraph::applyPush(unsigned U, unsigned I, int64_t Delta) {
  // Delta may be negative when undoing an earlier push.
  Edge &E = Adj[U][I];
  assert(E.ResCap - Delta >= 0 && "push exceeds residual");
  assert(Adj[E.To][E.Rev].ResCap + Delta >= 0 && "undo exceeds pushed flow");
  E.ResCap -= Delta;
  Adj[E.To][E.Rev].ResCap += Delta;
  Excess[U] -= Delta;
  Excess[E.To] += Delta;
}

int64_t FlowGraph::netResidualChange(unsigned U) const {
  // Flow on an edge = OrigCap - ResCap (positive when used forward).
  int64_t Net = 0;
  for (const Edge &E : Adj[U])
    Net += E.OrigCap - E.ResCap; // Outflow minus absorbed reverse flow.
  return Net;
}

bool FlowGraph::checkFlowValid(unsigned Source, unsigned Sink) const {
  for (unsigned U = 0; U != numNodes(); ++U) {
    for (const Edge &E : Adj[U]) {
      if (E.ResCap < 0 || E.ResCap > E.OrigCap + Adj[E.To][E.Rev].OrigCap)
        return false;
      // Antisymmetry: flow pushed here must appear as extra residual there.
      const Edge &R = Adj[E.To][E.Rev];
      if ((E.OrigCap - E.ResCap) + (R.OrigCap - R.ResCap) != 0)
        return false;
    }
    if (U != Source && U != Sink) {
      // Conservation: net outflow equals minus the remaining excess.
      if (netResidualChange(U) != -Excess[U])
        return false;
      if (Excess[U] < 0)
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// BoostedFlowGraph
//===----------------------------------------------------------------------===//

BoostedFlowGraph::BoostedFlowGraph(FlowGraph *Graph, const CommSpec &Spec,
                                   unsigned Partitions)
    : Graph(Graph), Scheme(Spec),
      Manager(&Scheme, Spec.name(),
              [Partitions](StateFnId, const Value &V) {
                return Value::integer(V.asInt() %
                                      static_cast<int64_t>(Partitions));
              }) {
  assert(Graph && "wrapper requires a graph");
}

bool BoostedFlowGraph::getNeighbors(Transaction &Tx, unsigned U,
                                    unsigned &Degree) {
  const FlowSig &S = flowSig();
  const std::vector<Value> Args = {Value::integer(U)};
  if (!Manager.acquirePre(Tx, S.GetNeighbors, Args))
    return false;
  Degree = Graph->degree(U);
  if (Tx.recording())
    Tx.recordInvocation(reinterpret_cast<uintptr_t>(this),
                        Invocation(S.GetNeighbors, Args,
                                   Value::integer(Degree)));
  return true;
}

bool BoostedFlowGraph::relabel(Transaction &Tx, unsigned U,
                               int64_t &NewHeight) {
  const FlowSig &S = flowSig();
  const std::vector<Value> Args = {Value::integer(U)};
  if (!Manager.acquirePre(Tx, S.Relabel, Args))
    return false;
  // 1 + min height over residual out-edges; 2N when stuck. Neighbor
  // heights are read without semantic protection (see header).
  int64_t Min = 2 * static_cast<int64_t>(Graph->numNodes());
  for (unsigned I = 0; I != Graph->degree(U); ++I)
    if (Graph->residual(U, I) > 0)
      Min = std::min(Min, Graph->height(Graph->neighbor(U, I)) + 1);
  const int64_t Old = Graph->height(U);
  NewHeight = std::max(Old, Min);
  Graph->setHeight(U, NewHeight);
  Tx.addUndo([this, U, Old] { Graph->setHeight(U, Old); });
  if (Tx.recording())
    Tx.recordInvocation(reinterpret_cast<uintptr_t>(this),
                        Invocation(S.Relabel, Args,
                                   Value::integer(NewHeight)));
  return true;
}

bool BoostedFlowGraph::pushFlow(Transaction &Tx, unsigned U, unsigned I,
                                int64_t &Pushed, bool &Activated) {
  const FlowSig &S = flowSig();
  const unsigned V = Graph->neighbor(U, I);
  const std::vector<Value> Args = {Value::integer(U), Value::integer(V)};
  if (!Manager.acquirePre(Tx, S.PushFlow, Args))
    return false;
  Pushed = 0;
  Activated = false;
  // Admissibility is re-validated under the locks.
  if (Graph->height(U) == Graph->height(V) + 1 && Graph->residual(U, I) > 0 &&
      Graph->excess(U) > 0) {
    const int64_t Delta = std::min(Graph->excess(U), Graph->residual(U, I));
    Activated = Graph->excess(V) == 0;
    Graph->applyPush(U, I, Delta);
    Pushed = Delta;
    Tx.addUndo([this, U, I, Delta] { Graph->applyPush(U, I, -Delta); });
  }
  if (Tx.recording())
    Tx.recordInvocation(reinterpret_cast<uintptr_t>(this),
                        Invocation(S.PushFlow, Args, Value::integer(Pushed)));
  return true;
}
