//===- adt/ExcessCounter.cpp - Privatizable preflow excess view ------------===//

#include "adt/ExcessCounter.h"

using namespace comlat;
using namespace comlat::dsl;

ExcessSig::ExcessSig() {
  AddExcess = Sig.addMethod("addExcess", 2, /*HasRet=*/false,
                            /*Mutating=*/true);
  ReadExcess = Sig.addMethod("readExcess", 1, /*HasRet=*/true,
                             /*Mutating=*/false);
}

const ExcessSig &comlat::excessSig() {
  static const ExcessSig S;
  return S;
}

const CommSpec &comlat::excessSpec() {
  static const CommSpec Spec = [] {
    const ExcessSig &S = excessSig();
    CommSpec Out(&S.Sig, "excess");
    Out.set(S.AddExcess, S.AddExcess, top());
    Out.set(S.AddExcess, S.ReadExcess, ne(arg1(0), arg2(0)));
    Out.set(S.ReadExcess, S.ReadExcess, top());
    return Out;
  }();
  return Spec;
}

TxExcessCounter::~TxExcessCounter() = default;

namespace {

/// GateTarget over the dense excess array. Distinct nodes touch distinct
/// cells, so stripe-level isolation holds trivially and the gatekeeper
/// stripes admissions by node.
class ExcessGateTarget : public GateTarget {
public:
  explicit ExcessGateTarget(unsigned NumNodes) : Excess(NumNodes, 0) {}

  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const ExcessSig &S = excessSig();
    const size_t Node = nodeOf(Args[0]);
    if (Method == S.AddExcess) {
      const int64_t Amount = Args[1].asInt();
      Excess[Node] += Amount;
      Actions.push_back(
          GateAction{[this, Node, Amount] { Excess[Node] -= Amount; },
                     [this, Node, Amount] { Excess[Node] += Amount; }});
      return Value::none();
    }
    assert(Method == S.ReadExcess && "unknown excess method");
    return Value::integer(Excess[Node]);
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    COMLAT_UNREACHABLE("excess counters have no state functions");
  }

  std::string gateSignature() const override {
    std::string Out;
    for (const int64_t E : Excess) {
      Out += std::to_string(E);
      Out += ',';
    }
    return Out;
  }

  bool gateConcurrentSafe() const override { return true; }

  bool privSupported(MethodId M) const override {
    return M == excessSig().AddExcess;
  }
  void privDelta(MethodId M, ValueSpan Args, int64_t &Slot,
                 int64_t &Amount) override {
    assert(M == excessSig().AddExcess && "not privatizable");
    Slot = Args[0].asInt();
    Amount = Args[1].asInt();
  }
  void privApplyDelta(int64_t Slot, int64_t Amount) override {
    Excess[nodeOf(Value::integer(Slot))] += Amount;
  }
  Invocation privInvocation(int64_t Slot, int64_t Amount) const override {
    return Invocation(excessSig().AddExcess,
                      {Value::integer(Slot), Value::integer(Amount)});
  }

  int64_t value(int64_t Node) const { return Excess[size_t(Node)]; }

private:
  size_t nodeOf(const Value &V) const {
    const size_t Node = size_t(V.asInt());
    assert(Node < Excess.size() && "node out of range");
    return Node;
  }

  std::vector<int64_t> Excess;
};

class GatedExcessCounter : public TxExcessCounter {
public:
  GatedExcessCounter(unsigned NumNodes, bool Privatize)
      : Target(NumNodes),
        Keeper(&excessSpec(), &Target,
               Privatize ? "excess-privatized" : "excess-gatekeeper",
               Privatize) {
    assert(Keeper.striped() && "excess conditions are key-separable");
    assert(Keeper.privatized() == Privatize &&
           "addExcess must classify as privatizable");
  }

  bool addExcess(Transaction &Tx, int64_t Node, int64_t Amount) override {
    const Value Args[2] = {Value::integer(Node), Value::integer(Amount)};
    Value Ret;
    if (!Keeper.invoke(Tx, excessSig().AddExcess, ValueSpan(Args, 2), Ret))
      return false;
    if (Tx.recording())
      Tx.recordInvocation(
          tag(), Invocation(excessSig().AddExcess, ValueSpan(Args, 2), Ret));
    return true;
  }

  bool readExcess(Transaction &Tx, int64_t Node, int64_t &Res) override {
    const Value Arg = Value::integer(Node);
    Value Ret;
    if (!Keeper.invoke(Tx, excessSig().ReadExcess, ValueSpan(&Arg, 1), Ret))
      return false;
    Res = Ret.asInt();
    if (Tx.recording())
      Tx.recordInvocation(
          tag(), Invocation(excessSig().ReadExcess, ValueSpan(&Arg, 1), Ret));
    return true;
  }

  int64_t value(int64_t Node) const override {
    Keeper.mergePrivatizedQuiesced();
    return Target.value(Node);
  }
  const char *schemeName() const override { return Keeper.name(); }

private:
  ExcessGateTarget Target;
  mutable ForwardGatekeeper Keeper;
};

} // namespace

std::unique_ptr<TxExcessCounter>
comlat::makeGatedExcessCounter(unsigned NumNodes, bool Privatize) {
  return std::make_unique<GatedExcessCounter>(NumNodes, Privatize);
}

Value ExcessReplayer::replay(uintptr_t StructureTag, const Invocation &Inv) {
  const ExcessSig &S = excessSig();
  const size_t Node = size_t(Inv.Args[0].asInt());
  assert(Node < Excess.size() && "node out of range");
  if (Inv.Method == S.AddExcess) {
    Excess[Node] += Inv.Args[1].asInt();
    return Value::none();
  }
  assert(Inv.Method == S.ReadExcess && "unknown excess method");
  return Value::integer(Excess[Node]);
}

std::string ExcessReplayer::stateSignature() {
  std::string Out;
  for (const int64_t E : Excess) {
    Out += std::to_string(E);
    Out += ',';
  }
  return Out;
}
