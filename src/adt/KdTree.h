//===- adt/KdTree.h - Kd-tree with bounding boxes ----------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kd-tree of §2.5, implemented exactly as the paper describes: points
/// live in the leaves, each interior node records its splitting plane, and
/// every node stores the bounding box of the points below it so nearest
/// queries can prune subtrees. Adding or removing a point updates the
/// bounding boxes of every node from the root to the affected leaf — the
/// concrete writes that make memory-level conflict detection (kd-ml)
/// reject semantically commuting operations.
///
/// Points are immutable coordinates in a PointStore and are referred to by
/// integer ids; nearest(a) returns the closest point *other than a itself*
/// (ties broken toward the smaller id, making replay deterministic), or
/// kNullPoint when none exists — "by convention, the point at infinity is
/// the closest point if the data set contains a single point".
///
/// Every operation optionally reports its concrete node accesses to a
/// MemProbe, which is how the STM baseline observes reads and writes; a
/// probe veto aborts the operation before any mutation (operations
/// pre-acquire their whole write path).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_KDTREE_H
#define COMLAT_ADT_KDTREE_H

#include "adt/IntHashSet.h"
#include "stm/ObjectStm.h"

#include <deque>
#include <memory>
#include <mutex>

namespace comlat {

/// Spatial dimensionality of the clustering workload.
constexpr unsigned KdDims = 3;

/// Sentinel id for "no point" (the point at infinity).
constexpr int64_t KdNullPoint = -1;

/// One immutable point.
struct Point3 {
  double C[KdDims];
};

/// Append-only store of immutable points; ids are dense indices.
/// Appends are internally synchronized; reads of existing points need no
/// locking because points never move or change (std::deque storage).
class PointStore {
public:
  int64_t addPoint(const Point3 &P);
  const Point3 &get(int64_t Id) const;
  size_t size() const;

  /// Euclidean distance; +infinity if either id is kNullPoint.
  double dist(int64_t A, int64_t B) const;

  /// Squared distance between stored points (both ids valid).
  double dist2(int64_t A, int64_t B) const;

private:
  mutable std::mutex M;
  std::deque<Point3> Points;
};

/// The sequential kd-tree. Not internally synchronized; wrappers serialize
/// concrete access.
class KdTree {
public:
  enum class Status { Ok, Conflict };

  /// \p Store must outlive the tree. \p LeafCapacity bounds leaf size
  /// before a split.
  explicit KdTree(const PointStore *Store, unsigned LeafCapacity = 8);
  ~KdTree();

  /// Inserts point \p Id. \p Changed is false when already present.
  Status add(int64_t Id, MemProbe *Probe, bool &Changed);

  /// Removes point \p Id. \p Changed is false when absent.
  Status remove(int64_t Id, MemProbe *Probe, bool &Changed);

  /// Finds the nearest point to \p Query distinct from \p Query (the query
  /// point itself need not be in the tree). \p Res = kNullPoint when the
  /// tree holds no other point.
  Status nearest(int64_t Query, MemProbe *Probe, int64_t &Res) const;

  size_t size() const { return Members.size(); }
  bool contains(int64_t Id) const { return Members.contains(Id); }

  /// Sorted member ids (state comparison in tests).
  std::vector<int64_t> elements() const { return Members.sortedElements(); }
  std::string signature() const { return Members.signature(); }

  /// Structural invariant check for property tests: every point lies in
  /// its leaf's box, every box covers its children, split planes separate.
  bool checkInvariants() const;

private:
  struct Node;
  Node *newNode();
  void freeTree(Node *N);
  Status addImpl(int64_t Id, MemProbe *Probe);
  Status removeImpl(int64_t Id, MemProbe *Probe);
  void splitLeaf(Node *Leaf);
  bool nearestImpl(const Node *N, int64_t Query, const Point3 &Q,
                   MemProbe *Probe, int64_t &Best, double &BestD2) const;
  bool checkNode(const Node *N) const;

  const PointStore *Store;
  unsigned LeafCapacity;
  Node *Root = nullptr;
  IntHashSet Members;
  uint64_t NextObjId = 1;
};

} // namespace comlat

#endif // COMLAT_ADT_KDTREE_H
