//===- adt/KdTree.cpp - Kd-tree with bounding boxes -------------------------===//

#include "adt/KdTree.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace comlat;

//===----------------------------------------------------------------------===//
// PointStore
//===----------------------------------------------------------------------===//

int64_t PointStore::addPoint(const Point3 &P) {
  std::lock_guard<std::mutex> Guard(M);
  Points.push_back(P);
  return static_cast<int64_t>(Points.size() - 1);
}

const Point3 &PointStore::get(int64_t Id) const {
  // Points are immutable and deque storage is stable, so reads of existing
  // ids need no lock; the wrappers serialize reads against appends.
  assert(Id >= 0 && static_cast<size_t>(Id) < Points.size() &&
         "bad point id");
  return Points[static_cast<size_t>(Id)];
}

size_t PointStore::size() const {
  std::lock_guard<std::mutex> Guard(M);
  return Points.size();
}

double PointStore::dist2(int64_t A, int64_t B) const {
  const Point3 &PA = get(A), &PB = get(B);
  double Sum = 0;
  for (unsigned D = 0; D != KdDims; ++D) {
    const double Delta = PA.C[D] - PB.C[D];
    Sum += Delta * Delta;
  }
  return Sum;
}

double PointStore::dist(int64_t A, int64_t B) const {
  if (A == KdNullPoint || B == KdNullPoint)
    return std::numeric_limits<double>::infinity();
  return std::sqrt(dist2(A, B));
}

//===----------------------------------------------------------------------===//
// KdTree
//===----------------------------------------------------------------------===//

struct KdTree::Node {
  uint64_t ObjId = 0;
  bool Leaf = true;
  int SplitDim = 0;
  double SplitVal = 0;
  bool BoxValid = false;
  double BoxMin[KdDims] = {0};
  double BoxMax[KdDims] = {0};
  std::vector<int64_t> Pts;
  Node *L = nullptr;
  Node *R = nullptr;
};

KdTree::KdTree(const PointStore *Store, unsigned LeafCapacity)
    : Store(Store), LeafCapacity(LeafCapacity) {
  assert(Store && LeafCapacity >= 2 && "bad kd-tree parameters");
  Root = newNode();
}

KdTree::~KdTree() { freeTree(Root); }

KdTree::Node *KdTree::newNode() {
  Node *N = new Node();
  N->ObjId = NextObjId++;
  return N;
}

void KdTree::freeTree(Node *N) {
  if (!N)
    return;
  freeTree(N->L);
  freeTree(N->R);
  delete N;
}

static void expandBoxRaw(bool &Valid, double *Min, double *Max,
                         const Point3 &P) {
  if (!Valid) {
    for (unsigned D = 0; D != KdDims; ++D)
      Min[D] = Max[D] = P.C[D];
    Valid = true;
    return;
  }
  for (unsigned D = 0; D != KdDims; ++D) {
    Min[D] = std::min(Min[D], P.C[D]);
    Max[D] = std::max(Max[D], P.C[D]);
  }
}

KdTree::Status KdTree::add(int64_t Id, MemProbe *Probe, bool &Changed) {
  Changed = !Members.contains(Id);
  const Point3 &P = Store->get(Id);

  // Collect the root-to-leaf path first: memory-level acquisition happens
  // before any mutation so a veto leaves the tree untouched. An insertion
  // writes the leaf and every ancestor whose bounding box must expand
  // (§2.5's bounding-box maintenance); interior nodes already covering the
  // point are only read.
  std::vector<Node *> Path;
  Node *N = Root;
  for (;;) {
    if (Probe) {
      bool Expands = !N->BoxValid;
      for (unsigned D = 0; !Expands && D != KdDims; ++D)
        Expands = P.C[D] < N->BoxMin[D] || P.C[D] > N->BoxMax[D];
      const bool Writes = Changed && (Expands || N->Leaf);
      const bool Ok =
          Writes ? Probe->onWrite(N->ObjId) : Probe->onRead(N->ObjId);
      if (!Ok)
        return Status::Conflict;
    }
    Path.push_back(N);
    if (N->Leaf)
      break;
    N = P.C[N->SplitDim] <= N->SplitVal ? N->L : N->R;
  }
  if (!Changed)
    return Status::Ok;

  Node *Leaf = Path.back();
  Leaf->Pts.push_back(Id);
  Members.insert(Id);
  for (Node *PathNode : Path)
    expandBoxRaw(PathNode->BoxValid, PathNode->BoxMin, PathNode->BoxMax, P);
  if (Leaf->Pts.size() > LeafCapacity)
    splitLeaf(Leaf);
  return Status::Ok;
}

void KdTree::splitLeaf(Node *Leaf) {
  // Split on the widest dimension at the box midpoint; degenerate leaves
  // (zero extent) simply stay oversized.
  assert(Leaf->Leaf && Leaf->BoxValid && "splitting a non-leaf");
  int Dim = 0;
  double Extent = -1;
  for (unsigned D = 0; D != KdDims; ++D) {
    const double E = Leaf->BoxMax[D] - Leaf->BoxMin[D];
    if (E > Extent) {
      Extent = E;
      Dim = static_cast<int>(D);
    }
  }
  if (Extent <= 0)
    return;
  const double Split = (Leaf->BoxMin[Dim] + Leaf->BoxMax[Dim]) / 2;

  Node *L = newNode();
  Node *R = newNode();
  for (const int64_t Id : Leaf->Pts) {
    const Point3 &P = Store->get(Id);
    Node *Child = P.C[Dim] <= Split ? L : R;
    Child->Pts.push_back(Id);
    expandBoxRaw(Child->BoxValid, Child->BoxMin, Child->BoxMax, P);
  }
  assert(!L->Pts.empty() && !R->Pts.empty() &&
         "midpoint split must separate a leaf with positive extent");
  Leaf->Leaf = false;
  Leaf->SplitDim = Dim;
  Leaf->SplitVal = Split;
  Leaf->Pts.clear();
  Leaf->Pts.shrink_to_fit();
  Leaf->L = L;
  Leaf->R = R;
}

KdTree::Status KdTree::remove(int64_t Id, MemProbe *Probe, bool &Changed) {
  Changed = Members.contains(Id);
  const Point3 &P = Store->get(Id);

  // A removal writes the leaf and every ancestor whose box can shrink
  // (the point lies on the box boundary); interior nodes strictly
  // containing the point are only read.
  std::vector<Node *> Path;
  Node *N = Root;
  for (;;) {
    if (Probe) {
      bool Shrinks = !N->BoxValid;
      for (unsigned D = 0; !Shrinks && D != KdDims; ++D)
        Shrinks = P.C[D] <= N->BoxMin[D] || P.C[D] >= N->BoxMax[D];
      const bool Writes = Changed && (Shrinks || N->Leaf);
      const bool Ok =
          Writes ? Probe->onWrite(N->ObjId) : Probe->onRead(N->ObjId);
      if (!Ok)
        return Status::Conflict;
    }
    Path.push_back(N);
    if (N->Leaf)
      break;
    N = P.C[N->SplitDim] <= N->SplitVal ? N->L : N->R;
  }
  if (!Changed)
    return Status::Ok;

  Node *Leaf = Path.back();
  const auto It = std::find(Leaf->Pts.begin(), Leaf->Pts.end(), Id);
  assert(It != Leaf->Pts.end() && "member point missing from its leaf");
  Leaf->Pts.erase(It);
  Members.erase(Id);

  // Shrink bounding boxes bottom-up along the path.
  for (auto PathIt = Path.rbegin(); PathIt != Path.rend(); ++PathIt) {
    Node &PathNode = **PathIt;
    PathNode.BoxValid = false;
    if (PathNode.Leaf) {
      for (const int64_t PtId : PathNode.Pts)
        expandBoxRaw(PathNode.BoxValid, PathNode.BoxMin, PathNode.BoxMax,
                     Store->get(PtId));
    } else {
      for (Node *Child : {PathNode.L, PathNode.R}) {
        if (!Child->BoxValid)
          continue;
        Point3 Corner;
        for (unsigned D = 0; D != KdDims; ++D)
          Corner.C[D] = Child->BoxMin[D];
        expandBoxRaw(PathNode.BoxValid, PathNode.BoxMin, PathNode.BoxMax,
                     Corner);
        for (unsigned D = 0; D != KdDims; ++D)
          Corner.C[D] = Child->BoxMax[D];
        expandBoxRaw(PathNode.BoxValid, PathNode.BoxMin, PathNode.BoxMax,
                     Corner);
      }
    }
  }
  return Status::Ok;
}

/// Squared distance from \p Q to a box (0 when inside).
static double boxDist2Impl(const double *Min, const double *Max,
                           const Point3 &Q) {
  double Sum = 0;
  for (unsigned D = 0; D != KdDims; ++D) {
    double Delta = 0;
    if (Q.C[D] < Min[D])
      Delta = Min[D] - Q.C[D];
    else if (Q.C[D] > Max[D])
      Delta = Q.C[D] - Max[D];
    Sum += Delta * Delta;
  }
  return Sum;
}

bool KdTree::nearestImpl(const Node *N, int64_t Query, const Point3 &Q,
                         MemProbe *Probe, int64_t &Best,
                         double &BestD2) const {
  if (Probe && !Probe->onRead(N->ObjId))
    return false;
  if (N->Leaf) {
    for (const int64_t Id : N->Pts) {
      if (Id == Query)
        continue;
      const double D2 = Store->dist2(Query, Id);
      if (D2 < BestD2 || (D2 == BestD2 && (Best == KdNullPoint || Id < Best))) {
        BestD2 = D2;
        Best = Id;
      }
    }
    return true;
  }
  // Visit the query-side child first; prune boxes strictly farther than the
  // best (<= keeps ties so the smallest-id tie-break stays deterministic).
  const Node *Near = Q.C[N->SplitDim] <= N->SplitVal ? N->L : N->R;
  const Node *Far = Near == N->L ? N->R : N->L;
  for (const Node *Child : {Near, Far}) {
    if (!Child->BoxValid)
      continue;
    if (boxDist2Impl(Child->BoxMin, Child->BoxMax, Q) > BestD2)
      continue;
    if (!nearestImpl(Child, Query, Q, Probe, Best, BestD2))
      return false;
  }
  return true;
}

KdTree::Status KdTree::nearest(int64_t Query, MemProbe *Probe,
                               int64_t &Res) const {
  const Point3 &Q = Store->get(Query);
  int64_t Best = KdNullPoint;
  double BestD2 = std::numeric_limits<double>::infinity();
  if (!nearestImpl(Root, Query, Q, Probe, Best, BestD2))
    return Status::Conflict;
  Res = Best;
  return Status::Ok;
}

bool KdTree::checkNode(const Node *N) const {
  if (N->Leaf) {
    for (const int64_t Id : N->Pts) {
      const Point3 &P = Store->get(Id);
      if (!N->BoxValid)
        return false;
      for (unsigned D = 0; D != KdDims; ++D)
        if (P.C[D] < N->BoxMin[D] || P.C[D] > N->BoxMax[D])
          return false;
    }
    return true;
  }
  if (!N->L || !N->R)
    return false;
  for (const Node *Child : {N->L, N->R}) {
    if (!Child->BoxValid)
      continue;
    if (!N->BoxValid)
      return false;
    for (unsigned D = 0; D != KdDims; ++D)
      if (Child->BoxMin[D] < N->BoxMin[D] || Child->BoxMax[D] > N->BoxMax[D])
        return false;
  }
  return checkNode(N->L) && checkNode(N->R);
}

bool KdTree::checkInvariants() const { return checkNode(Root); }
