//===- adt/UnionFind.h - Disjoint-set forest ---------------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The union-find structure of §2.5: a disjoint-set forest with
/// union-by-rank and path compression. Path compression makes find mutate
/// the concrete representation while leaving the abstract state (the
/// partition plus each set's representative and rank) unchanged — the
/// paper's motivating example for semantic conflict detection.
///
/// Every concrete parent/rank write is reported to an optional MemProbe
/// (the memory-level uf-ml baseline) and recorded as an undo/redo
/// GateAction. Recording compression actions keeps aborts and the general
/// gatekeeper's rollback evaluation exact even when a transaction's own
/// find compressed across its own earlier union.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_UNIONFIND_H
#define COMLAT_ADT_UNIONFIND_H

#include "runtime/GateTarget.h"
#include "stm/ObjectStm.h"

#include <string>
#include <string_view>
#include <vector>

namespace comlat {

/// Sentinel meaning "no representative" (e.g. loser of a no-op union).
constexpr int64_t UfNone = -1;

/// Sequential disjoint-set forest. Not internally synchronized.
class UnionFind {
public:
  enum class Status { Ok, Conflict };

  explicit UnionFind(size_t NumElements = 0);

  /// Adds a singleton element; returns its id.
  int64_t createElement();

  /// Removes the most recently created element (undo of createElement).
  /// The element must still be a singleton root.
  void destroyLastElement();

  size_t numElements() const { return Parent.size(); }

  /// find with path compression. Concrete writes go through \p Probe (veto
  /// aborts mid-way; already-performed writes are in \p Actions) and are
  /// recorded in \p Actions when non-null.
  Status find(int64_t X, MemProbe *Probe, GateActionList *Actions,
              int64_t &Rep);

  /// union by rank. \p Changed is false when both ends were already in the
  /// same set. Internally performs two finds (compression included).
  Status unite(int64_t A, int64_t B, MemProbe *Probe, GateActionList *Actions,
               bool &Changed);

  /// Abstract-state queries (no compression, no probes); these implement
  /// the state functions rep/rank/loser/winner of the Fig. 5 conditions.
  int64_t repOf(int64_t X) const;
  int64_t rankOfSet(int64_t X) const;
  /// Representative that would lose a union(A, B): the lower-ranked root
  /// (B's root on ties, matching the paper's definition); UfNone when A
  /// and B are already in the same set.
  int64_t loserOf(int64_t A, int64_t B) const;
  /// Representative that would win; UfNone when already in the same set.
  int64_t winnerOf(int64_t A, int64_t B) const;
  bool sameSet(int64_t A, int64_t B) const {
    return repOf(A) == repOf(B);
  }

  /// Uncompressed root-to-leaf chain of \p X (X first, root last); used by
  /// the specialized union-find gatekeeper's path checks.
  void chainOf(int64_t X, std::vector<int64_t> &Out) const;

  /// Canonical partition fingerprint: each element mapped to the smallest
  /// element of its set. Representative identity is also observable via
  /// find, so the signature appends each set's representative.
  std::string signature() const;

  /// Exact concrete state as `parent:rank,` per element. Unlike
  /// signature(), this preserves ranks — which decide future winnerOf
  /// outcomes — so a restored forest behaves identically to the original
  /// under further unions (the durability snapshot needs exactly that).
  std::string dumpState() const;

  /// Replaces the forest with a dumpState() encoding. Returns false (state
  /// unchanged) on a malformed dump or one violating checkInvariants().
  bool restoreState(std::string_view Dump);

  /// Structural invariants (ranks increase toward roots, parents valid).
  bool checkInvariants() const;

private:
  void setParent(int64_t X, int64_t NewParent, GateActionList *Actions);

  std::vector<int64_t> Parent;
  std::vector<int32_t> Rank;
};

} // namespace comlat

#endif // COMLAT_ADT_UNIONFIND_H
