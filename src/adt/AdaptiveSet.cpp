//===- adt/AdaptiveSet.cpp - Dynamic lattice-point selection ----------------===//

#include "adt/AdaptiveSet.h"

using namespace comlat;

namespace {

/// Gate target over a *shared* concrete set (the adaptive wrapper owns the
/// set; the gatekeeper level borrows it).
class SharedSetGateTarget : public GateTarget {
public:
  explicit SharedSetGateTarget(IntHashSet &Set) : Set(Set) {}

  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const SetSig &S = setSig();
    const int64_t Key = Args[0].asInt();
    if (Method == S.Add) {
      const bool Changed = Set.insert(Key);
      if (Changed)
        Actions.push_back(GateAction{[this, Key] { Set.erase(Key); },
                                     [this, Key] { Set.insert(Key); }});
      return Value::boolean(Changed);
    }
    if (Method == S.Remove) {
      const bool Changed = Set.erase(Key);
      if (Changed)
        Actions.push_back(GateAction{[this, Key] { Set.insert(Key); },
                                     [this, Key] { Set.erase(Key); }});
      return Value::boolean(Changed);
    }
    assert(Method == S.Contains && "unknown set method");
    return Value::boolean(Set.contains(Key));
  }

  Value gateEvalStateFn(StateFnId, ValueSpan) override {
    COMLAT_UNREACHABLE("precise set spec uses no state functions");
  }

private:
  IntHashSet &Set;
};

} // namespace

class AdaptiveSet::Impl {
public:
  explicit Impl(AdaptivePolicy Policy)
      : Policy(Policy), SchemeEx(exclusiveSetSpec()),
        SchemeRw(strengthenedSetSpec()),
        MgrEx(&SchemeEx, "adaptive-exclusive"),
        MgrRw(&SchemeRw, "adaptive-rw"), Target(Set),
        Keeper(&preciseSetSpec(), &Target, "adaptive-precise") {
    // Every level evaluates compiled programs: the two lock levels through
    // their schemes' key programs, the precise level through the
    // gatekeeper's pair plans. The precise spec is key-separable, but the
    // concrete set is shared with the lock levels (one unsharded
    // IntHashSet), so SharedSetGateTarget keeps the non-concurrent default
    // and admission stays on the single-stripe path.
    assert(!Keeper.striped() && "shared-set target keeps the global gate");
  }

  /// Binds \p Tx to a level, or refuses it while a switch is draining.
  std::optional<Level> bind(Transaction &Tx) {
    std::lock_guard<std::mutex> Guard(Ctl);
    const auto It = Bound.find(Tx.id());
    if (It != Bound.end())
      return It->second;
    if (Pending) {
      if (totalLive() != 0) {
        ++DrainRefusals;
        Tx.fail(AbortCause::Gatekeeper);
        return std::nullopt; // Retry after the drain completes.
      }
      Current = *Pending;
      Pending.reset();
      ++Switches;
    }
    Bound.emplace(Tx.id(), Current);
    ++Live[static_cast<unsigned>(Current)];
    return Current;
  }

  void finish(TxId Id, bool Committed) {
    std::lock_guard<std::mutex> Guard(Ctl);
    const auto It = Bound.find(Id);
    if (It == Bound.end())
      return; // Refused before binding.
    --Live[static_cast<unsigned>(It->second)];
    Bound.erase(It);
    // Sliding-window policy.
    ++(Committed ? WindowCommits : WindowAborts);
    if (WindowCommits + WindowAborts < Policy.Window)
      return;
    const double Ratio =
        static_cast<double>(WindowAborts) /
        static_cast<double>(WindowCommits + WindowAborts);
    WindowCommits = WindowAborts = 0;
    if (Pending)
      return; // A switch is already in flight.
    const unsigned Cur = static_cast<unsigned>(Current);
    if (Ratio > Policy.EscalateAbortRatio && Cur < 2)
      Pending = static_cast<Level>(Cur + 1);
    else if (Ratio < Policy.DeescalateAbortRatio && Cur > 0)
      Pending = static_cast<Level>(Cur - 1);
  }

  /// Lock-level execution (Exclusive / ReadWrite).
  bool lockedInvoke(AbstractLockManager &Mgr, Transaction &Tx,
                    MethodId Method, int64_t Key, bool &Res) {
    const std::vector<Value> Args = {Value::integer(Key)};
    if (!Mgr.acquirePre(Tx, Method, Args))
      return false;
    const SetSig &S = setSig();
    {
      std::lock_guard<std::mutex> Guard(M);
      if (Method == S.Add) {
        Res = Set.insert(Key);
        if (Res)
          Tx.addUndo([this, Key] {
            std::lock_guard<std::mutex> G(M);
            Set.erase(Key);
          });
      } else if (Method == S.Remove) {
        Res = Set.erase(Key);
        if (Res)
          Tx.addUndo([this, Key] {
            std::lock_guard<std::mutex> G(M);
            Set.insert(Key);
          });
      } else {
        Res = Set.contains(Key);
      }
    }
    return Mgr.acquirePost(Tx, Method, Args, Value::boolean(Res));
  }

  AdaptivePolicy Policy;

  mutable std::mutex M; ///< Guards the concrete set on the lock levels.
  IntHashSet Set;

  LockScheme SchemeEx;
  LockScheme SchemeRw;
  AbstractLockManager MgrEx;
  AbstractLockManager MgrRw;
  SharedSetGateTarget Target;
  ForwardGatekeeper Keeper;

  mutable std::mutex Ctl;
  Level Current = Level::Exclusive;
  std::optional<Level> Pending;
  std::map<TxId, Level> Bound;
  std::array<unsigned, 3> Live = {0, 0, 0};
  uint64_t WindowCommits = 0;
  uint64_t WindowAborts = 0;
  uint64_t Switches = 0;
  uint64_t DrainRefusals = 0;

  unsigned totalLive() const { return Live[0] + Live[1] + Live[2]; }
};

AdaptiveSet::AdaptiveSet(AdaptivePolicy Policy)
    : P(std::make_unique<Impl>(Policy)) {}

AdaptiveSet::~AdaptiveSet() = default;

bool AdaptiveSet::invoke(Transaction &Tx, MethodId Method, int64_t Key,
                         bool &Res) {
  Tx.touch(this);
  const std::optional<Level> L = P->bind(Tx);
  if (!L)
    return false; // Drain barrier: transaction retries later.
  bool Ok;
  switch (*L) {
  case Level::Exclusive:
    Ok = P->lockedInvoke(P->MgrEx, Tx, Method, Key, Res);
    break;
  case Level::ReadWrite:
    Ok = P->lockedInvoke(P->MgrRw, Tx, Method, Key, Res);
    break;
  case Level::Precise: {
    Value Ret;
    Ok = P->Keeper.invoke(Tx, Method, {Value::integer(Key)}, Ret);
    if (Ok)
      Res = Ret.asBool();
    break;
  }
  }
  if (Ok && Tx.recording())
    Tx.recordInvocation(tag(), Invocation(Method, {Value::integer(Key)},
                                          Value::boolean(Res)));
  return Ok;
}

bool AdaptiveSet::add(Transaction &Tx, int64_t Key, bool &Res) {
  return invoke(Tx, setSig().Add, Key, Res);
}

bool AdaptiveSet::remove(Transaction &Tx, int64_t Key, bool &Res) {
  return invoke(Tx, setSig().Remove, Key, Res);
}

bool AdaptiveSet::contains(Transaction &Tx, int64_t Key, bool &Res) {
  return invoke(Tx, setSig().Contains, Key, Res);
}

std::string AdaptiveSet::signature() const {
  std::lock_guard<std::mutex> Guard(P->M);
  return P->Set.signature();
}

void AdaptiveSet::release(Transaction &Tx, bool Committed) {
  P->finish(Tx.id(), Committed);
}

AdaptiveSet::Level AdaptiveSet::currentLevel() const {
  std::lock_guard<std::mutex> Guard(P->Ctl);
  return P->Current;
}

uint64_t AdaptiveSet::numSwitches() const {
  std::lock_guard<std::mutex> Guard(P->Ctl);
  return P->Switches;
}

uint64_t AdaptiveSet::numDrainRefusals() const {
  std::lock_guard<std::mutex> Guard(P->Ctl);
  return P->DrainRefusals;
}
