//===- adt/BoostedKdTree.cpp - Transactional kd-tree variants ---------------===//

#include "adt/BoostedKdTree.h"

using namespace comlat;
using namespace comlat::dsl;

KdSig::KdSig() {
  Add = Sig.addMethod("add", 1, /*HasRet=*/true, /*Mutating=*/true);
  Remove = Sig.addMethod("remove", 1, /*HasRet=*/true, /*Mutating=*/true);
  Nearest = Sig.addMethod("nearest", 1, /*HasRet=*/true, /*Mutating=*/false);
  Dist = Sig.addStateFn("dist", 2, /*Pure=*/true);
}

const KdSig &comlat::kdSig() {
  static const KdSig S;
  return S;
}

const CommSpec &comlat::kdSpec() {
  static const CommSpec Spec = [] {
    const KdSig &S = kdSig();
    CommSpec Out(&S.Sig, "kdtree-precise");
    const FormulaPtr KeysDiffer = ne(arg1(0), arg2(0));
    const FormulaPtr NeitherMutated =
        conj(eq(ret1(), cst(false)), eq(ret2(), cst(false)));
    // (1) nearest ~ nearest: read-only queries always commute.
    Out.set(S.Nearest, S.Nearest, top());
    // (2) nearest(a)/r1 ~ add(b)/r2: the add changed nothing, or b is
    // farther from a than the answer r1 (dist is pure: points are
    // immutable values).
    Out.set(S.Nearest, S.Add,
            disj(eq(ret2(), cst(false)),
                 gt(apply(S.Dist, StateRef::None, {arg1(0), arg2(0)}),
                    apply(S.Dist, StateRef::None, {arg1(0), ret1()}))));
    // (3) nearest(a)/r1 ~ remove(b)/r2: the remove changed nothing, or it
    // removed a point other than the answer that is farther from a than
    // the answer. Deviation from Fig. 4, which guards only (a != b and
    // r1 != b): evaluated with the remove first, that guard passes even
    // though nearest-before-remove would have returned the removed point
    // (e.g. remove(4)/true then nearest(3)/null on a one-point tree) —
    // the randomized condition validator produces this counterexample
    // (tests/runtime/SpecValidatorTest.cpp). The distance clause restores
    // both-moving validity and reuses the logged dist(a, r1).
    Out.set(S.Nearest, S.Remove,
            disj(eq(ret2(), cst(false)),
                 conj(ne(ret1(), arg2(0)),
                      gt(apply(S.Dist, StateRef::None, {arg1(0), arg2(0)}),
                         apply(S.Dist, StateRef::None,
                               {arg1(0), ret1()})))));
    // (4-6) add/remove pairs behave like the set (Fig. 2 clauses).
    Out.set(S.Add, S.Add, disj(KeysDiffer, NeitherMutated));
    Out.set(S.Add, S.Remove, disj(KeysDiffer, NeitherMutated));
    Out.set(S.Remove, S.Remove, disj(KeysDiffer, NeitherMutated));
    return Out;
  }();
  return Spec;
}

TxKdTree::~TxKdTree() = default;

namespace {

/// Shared helper: run one kd-tree method against a concrete tree.
class KdGateTarget : public GateTarget {
public:
  explicit KdGateTarget(const PointStore *Store) : Store(Store), Tree(Store) {}

  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const KdSig &S = kdSig();
    const int64_t Id = Args[0].asInt();
    if (Method == S.Add) {
      bool Changed = false;
      const KdTree::Status St = Tree.add(Id, nullptr, Changed);
      assert(St == KdTree::Status::Ok && "unprobed op cannot conflict");
      (void)St;
      if (Changed)
        Actions.push_back(GateAction{[this, Id] {
                                       bool C;
                                       Tree.remove(Id, nullptr, C);
                                     },
                                     [this, Id] {
                                       bool C;
                                       Tree.add(Id, nullptr, C);
                                     }});
      return Value::boolean(Changed);
    }
    if (Method == S.Remove) {
      bool Changed = false;
      const KdTree::Status St = Tree.remove(Id, nullptr, Changed);
      assert(St == KdTree::Status::Ok && "unprobed op cannot conflict");
      (void)St;
      if (Changed)
        Actions.push_back(GateAction{[this, Id] {
                                       bool C;
                                       Tree.add(Id, nullptr, C);
                                     },
                                     [this, Id] {
                                       bool C;
                                       Tree.remove(Id, nullptr, C);
                                     }});
      return Value::boolean(Changed);
    }
    assert(Method == S.Nearest && "unknown kd-tree method");
    int64_t Res = KdNullPoint;
    const KdTree::Status St = Tree.nearest(Id, nullptr, Res);
    assert(St == KdTree::Status::Ok && "unprobed op cannot conflict");
    (void)St;
    return Value::integer(Res);
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    assert(F == kdSig().Dist && "unknown kd-tree state function");
    return Value::real(Store->dist(Args[0].asInt(), Args[1].asInt()));
  }

  std::string gateSignature() const override { return Tree.signature(); }

  const KdTree &tree() const { return Tree; }

private:
  const PointStore *Store;
  KdTree Tree;
};

/// Unprotected baseline.
class DirectKdTree : public TxKdTree {
public:
  explicit DirectKdTree(const PointStore *Store) : Tree(Store) {}

  bool add(Transaction &Tx, int64_t Id, bool &Changed) override {
    Tree.add(Id, nullptr, Changed);
    record(Tx, kdSig().Add, Id, Value::boolean(Changed));
    return true;
  }
  bool remove(Transaction &Tx, int64_t Id, bool &Changed) override {
    Tree.remove(Id, nullptr, Changed);
    record(Tx, kdSig().Remove, Id, Value::boolean(Changed));
    return true;
  }
  bool nearest(Transaction &Tx, int64_t Query, int64_t &Res) override {
    Tree.nearest(Query, nullptr, Res);
    record(Tx, kdSig().Nearest, Query, Value::integer(Res));
    return true;
  }
  std::string signature() const override { return Tree.signature(); }
  size_t size() const override { return Tree.size(); }
  const char *schemeName() const override { return "kd-direct"; }

private:
  void record(Transaction &Tx, MethodId M, int64_t Arg, Value Ret) {
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(M, {Value::integer(Arg)}, Ret));
  }
  KdTree Tree;
};

/// kd-gk: forward gatekeeper.
class GatedKdTree : public TxKdTree {
public:
  explicit GatedKdTree(const PointStore *Store)
      : Target(Store), Keeper(&kdSpec(), &Target, "kd-gk") {
    // The kd conditions compile like every other spec, but they resolve
    // nearest/dist applications against abstract state, which excludes the
    // striped admission path (there is no per-stripe historical state).
    assert(!Keeper.striped() && "kd conditions read state, cannot stripe");
  }

  bool add(Transaction &Tx, int64_t Id, bool &Changed) override {
    Value Ret;
    if (!Keeper.invoke(Tx, kdSig().Add, {Value::integer(Id)}, Ret))
      return false;
    Changed = Ret.asBool();
    record(Tx, kdSig().Add, Id, Ret);
    return true;
  }
  bool remove(Transaction &Tx, int64_t Id, bool &Changed) override {
    Value Ret;
    if (!Keeper.invoke(Tx, kdSig().Remove, {Value::integer(Id)}, Ret))
      return false;
    Changed = Ret.asBool();
    record(Tx, kdSig().Remove, Id, Ret);
    return true;
  }
  bool nearest(Transaction &Tx, int64_t Query, int64_t &Res) override {
    Value Ret;
    if (!Keeper.invoke(Tx, kdSig().Nearest, {Value::integer(Query)}, Ret))
      return false;
    Res = Ret.asInt();
    record(Tx, kdSig().Nearest, Query, Ret);
    return true;
  }
  std::string signature() const override { return Target.tree().signature(); }
  size_t size() const override { return Target.tree().size(); }
  const char *schemeName() const override { return "kd-gk"; }

private:
  void record(Transaction &Tx, MethodId M, int64_t Arg, Value Ret) {
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(M, {Value::integer(Arg)}, Ret));
  }
  KdGateTarget Target;
  ForwardGatekeeper Keeper;
};

/// kd-ml: memory-level STM over concrete nodes. Concrete execution is
/// serialized by a structure mutex; isolation across whole transactions
/// comes from the per-node STM locks.
class StmKdTree : public TxKdTree {
public:
  explicit StmKdTree(const PointStore *Store)
      : Tree(Store), Stm("kd-ml") {}

  bool add(Transaction &Tx, int64_t Id, bool &Changed) override {
    StmProbe Probe(Stm, Tx);
    std::lock_guard<std::mutex> Guard(M);
    if (Tree.add(Id, &Probe, Changed) == KdTree::Status::Conflict)
      return false;
    if (Changed)
      Tx.addUndo([this, Id] {
        std::lock_guard<std::mutex> G(M);
        bool C;
        Tree.remove(Id, nullptr, C);
      });
    record(Tx, kdSig().Add, Id, Value::boolean(Changed));
    return true;
  }
  bool remove(Transaction &Tx, int64_t Id, bool &Changed) override {
    StmProbe Probe(Stm, Tx);
    std::lock_guard<std::mutex> Guard(M);
    if (Tree.remove(Id, &Probe, Changed) == KdTree::Status::Conflict)
      return false;
    if (Changed)
      Tx.addUndo([this, Id] {
        std::lock_guard<std::mutex> G(M);
        bool C;
        Tree.add(Id, nullptr, C);
      });
    record(Tx, kdSig().Remove, Id, Value::boolean(Changed));
    return true;
  }
  bool nearest(Transaction &Tx, int64_t Query, int64_t &Res) override {
    StmProbe Probe(Stm, Tx);
    std::lock_guard<std::mutex> Guard(M);
    if (Tree.nearest(Query, &Probe, Res) == KdTree::Status::Conflict)
      return false;
    record(Tx, kdSig().Nearest, Query, Value::integer(Res));
    return true;
  }
  std::string signature() const override {
    std::lock_guard<std::mutex> Guard(M);
    return Tree.signature();
  }
  size_t size() const override {
    std::lock_guard<std::mutex> Guard(M);
    return Tree.size();
  }
  const char *schemeName() const override { return "kd-ml"; }

private:
  void record(Transaction &Tx, MethodId Method, int64_t Arg, Value Ret) {
    if (Tx.recording())
      Tx.recordInvocation(tag(),
                          Invocation(Method, {Value::integer(Arg)}, Ret));
  }
  mutable std::mutex M;
  KdTree Tree;
  ObjectStm Stm;
};

} // namespace

std::unique_ptr<TxKdTree> comlat::makeDirectKdTree(const PointStore *Store) {
  return std::make_unique<DirectKdTree>(Store);
}

std::unique_ptr<TxKdTree> comlat::makeGatedKdTree(const PointStore *Store) {
  return std::make_unique<GatedKdTree>(Store);
}

std::unique_ptr<TxKdTree> comlat::makeStmKdTree(const PointStore *Store) {
  return std::make_unique<StmKdTree>(Store);
}

ValidationHarness comlat::kdValidationHarness(const PointStore *Store) {
  assert(Store && Store->size() > 0 && "harness needs a point pool");
  ValidationHarness Harness;
  Harness.MakeTarget = [Store] {
    return std::make_unique<KdGateTarget>(Store);
  };
  const size_t Pool = Store->size();
  Harness.RandomArgs = [Pool](Rng &R, MethodId) {
    return std::vector<Value>{
        Value::integer(static_cast<int64_t>(R.nextBelow(Pool)))};
  };
  return Harness;
}

Value KdReplayer::replay(uintptr_t StructureTag, const Invocation &Inv) {
  const KdSig &S = kdSig();
  const int64_t Id = Inv.Args[0].asInt();
  bool Changed = false;
  if (Inv.Method == S.Add) {
    Tree.add(Id, nullptr, Changed);
    return Value::boolean(Changed);
  }
  if (Inv.Method == S.Remove) {
    Tree.remove(Id, nullptr, Changed);
    return Value::boolean(Changed);
  }
  assert(Inv.Method == S.Nearest && "unknown kd-tree method");
  int64_t Res = KdNullPoint;
  Tree.nearest(Id, nullptr, Res);
  return Value::integer(Res);
}
