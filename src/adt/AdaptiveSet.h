//===- adt/AdaptiveSet.h - Dynamic lattice-point selection ------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing future-work item, implemented: "the ability to rank
/// checkers by permittivity can allow an automated system to adaptively
/// and dynamically select from these implementations as run-time needs
/// change, given observations of parallelism and overhead" (§5).
///
/// AdaptiveSet maintains one concrete set behind three conflict detectors
/// ranked by the lattice — exclusive key locks (cheapest, strongest spec),
/// read/write key locks (Fig. 3), and the precise forward gatekeeper
/// (Fig. 2, most permissive) — and switches between them based on the
/// observed abort ratio over a sliding window: escalate when aborts
/// exceed a high-water mark (buy permissiveness), de-escalate when a
/// window runs essentially abort-free (shed overhead).
///
/// Switching is only sound when no live transaction straddles two
/// detectors (they would not see each other's locks/logs). The protocol:
/// a transaction binds to the current level on its first call and keeps
/// it for life; a pending switch first drains — new transactions are
/// refused (they abort and retry, a natural fit for the speculative
/// executor) until every bound transaction finished — and then flips the
/// level.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_ADAPTIVESET_H
#define COMLAT_ADT_ADAPTIVESET_H

#include "adt/BoostedSet.h"

#include <array>
#include <map>
#include <optional>

namespace comlat {

/// Switching policy.
struct AdaptivePolicy {
  /// Escalate above this abort ratio over a window.
  double EscalateAbortRatio = 0.10;
  /// De-escalate below this abort ratio over a window.
  double DeescalateAbortRatio = 0.005;
  /// Window length in finished transactions.
  uint64_t Window = 128;
};

/// A transactional set that walks the lattice at run time.
class AdaptiveSet : public TxSet, public ConflictDetector {
public:
  /// Permissiveness rank (lattice position) of the managed schemes.
  enum class Level : uint8_t { Exclusive = 0, ReadWrite = 1, Precise = 2 };

  explicit AdaptiveSet(AdaptivePolicy Policy = AdaptivePolicy());
  ~AdaptiveSet() override;

  // TxSet interface.
  bool add(Transaction &Tx, int64_t Key, bool &Res) override;
  bool remove(Transaction &Tx, int64_t Key, bool &Res) override;
  bool contains(Transaction &Tx, int64_t Key, bool &Res) override;
  std::string signature() const override;
  const char *schemeName() const override { return "adaptive"; }

  // ConflictDetector interface (bookkeeping only; the inner detectors
  // manage their own locks/logs through the same transaction).
  void release(Transaction &Tx, bool Committed) override;
  const char *name() const override { return "adaptive"; }

  /// The level new transactions currently bind to.
  Level currentLevel() const;
  /// Completed level changes.
  uint64_t numSwitches() const;
  /// Transactions refused while draining toward a pending switch.
  uint64_t numDrainRefusals() const;

private:
  class Impl;
  bool invoke(Transaction &Tx, MethodId Method, int64_t Key, bool &Res);

  std::unique_ptr<Impl> P;
};

} // namespace comlat

#endif // COMLAT_ADT_ADAPTIVESET_H
