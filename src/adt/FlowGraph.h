//===- adt/FlowGraph.h - Flow network for preflow-push ----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph ADT behind the preflow-push case study (§5): a residual flow
/// network with per-node height and excess, exposing the three boosted
/// methods the paper names — relabel, pushFlow and getNeighbors — plus the
/// SIMPLE commutativity specifications of the three studied variants:
///
///  * ml: read/write locks on nodes (the paper notes this "is identical to
///    the conflict detection performed by a transactional memory");
///  * ex: getNeighbors no longer commutes with itself on the same node —
///    exclusive locks;
///  * part: the §4.2 partition coarsening of ml (32 partitions by
///    default).
///
/// Topology is immutable once built. Heights are relaxed atomics because
/// relabel reads neighbor heights without semantic protection — the
/// classic asynchronous preflow-push argument (heights only grow and
/// pushes re-validate admissibility under their own locks) keeps the
/// algorithm correct with stale reads.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_FLOWGRAPH_H
#define COMLAT_ADT_FLOWGRAPH_H

#include "core/Spec.h"
#include "runtime/AbstractLockManager.h"

#include <atomic>
#include <memory>
#include <vector>

namespace comlat {

/// Method/state-function ids of the flow-graph ADT.
struct FlowSig {
  DataTypeSig Sig{"flowgraph"};
  MethodId Relabel, PushFlow, GetNeighbors;
  StateFnId Part;

  FlowSig();
};

const FlowSig &flowSig();

/// ml: r/w node locks (== memory-level / TM conflict detection).
const CommSpec &mlFlowSpec();
/// ex: exclusive node locks.
const CommSpec &exFlowSpec();
/// part: partitioned node locks (§4.2).
const CommSpec &partFlowSpec();

/// The concrete residual network.
class FlowGraph {
public:
  explicit FlowGraph(unsigned NumNodes);

  /// Adds a directed edge with capacity \p Cap; parallel edges merge. A
  /// zero-capacity reverse edge is created when absent. Must only be
  /// called before parallel execution starts.
  void addEdge(unsigned From, unsigned To, int64_t Cap);

  unsigned numNodes() const { return static_cast<unsigned>(Adj.size()); }
  unsigned degree(unsigned U) const {
    return static_cast<unsigned>(Adj[U].size());
  }
  unsigned neighbor(unsigned U, unsigned I) const { return Adj[U][I].To; }
  int64_t residual(unsigned U, unsigned I) const { return Adj[U][I].ResCap; }

  int64_t height(unsigned U) const {
    return Height[U].load(std::memory_order_relaxed);
  }
  void setHeight(unsigned U, int64_t H) {
    Height[U].store(H, std::memory_order_relaxed);
  }
  int64_t excess(unsigned U) const { return Excess[U]; }
  void setExcess(unsigned U, int64_t E) { Excess[U] = E; }

  /// Moves \p Delta units of flow along edge \p I of \p U (updates both
  /// residuals and both excesses). Caller holds the semantic locks.
  void applyPush(unsigned U, unsigned I, int64_t Delta);

  /// Total inflow minus outflow at \p U against original capacities —
  /// used by the validity checker.
  int64_t netResidualChange(unsigned U) const;

  /// Verifies capacity constraints and conservation (given source/sink).
  bool checkFlowValid(unsigned Source, unsigned Sink) const;

private:
  friend class BoostedFlowGraph;
  struct Edge {
    unsigned To;
    unsigned Rev; ///< Index of the reverse edge in Adj[To].
    int64_t ResCap;
    int64_t OrigCap;
  };
  std::vector<std::vector<Edge>> Adj;
  std::vector<std::atomic<int64_t>> Height;
  std::vector<int64_t> Excess;
};

/// The boosted flow graph: abstract locks generated from one of the three
/// SIMPLE specs guard the methods; concrete updates are race-free under
/// the semantic locks (dense arrays, per-node entries).
class BoostedFlowGraph {
public:
  /// \p Graph must outlive the wrapper.
  BoostedFlowGraph(FlowGraph *Graph, const CommSpec &Spec,
                   unsigned Partitions = 32);

  /// Locks node \p U for neighbor iteration; \p Degree receives the
  /// degree. The caller may then read topology and call pushFlow.
  bool getNeighbors(Transaction &Tx, unsigned U, unsigned &Degree);

  /// Relabels \p U to 1 + min height over residual out-edges (or 2N when
  /// stuck); \p NewHeight receives the result.
  bool relabel(Transaction &Tx, unsigned U, int64_t &NewHeight);

  /// Pushes min(excess(U), residual) along edge index \p I of \p U when
  /// admissible (height(U) == height(to)+1); \p Pushed receives the amount
  /// (0 when inadmissible) and \p Activated whether the target's excess
  /// rose from zero.
  bool pushFlow(Transaction &Tx, unsigned U, unsigned I, int64_t &Pushed,
                bool &Activated);

  FlowGraph &graph() { return *Graph; }
  const char *schemeName() const { return Manager.name(); }
  const AbstractLockManager &manager() const { return Manager; }

private:
  FlowGraph *Graph;
  LockScheme Scheme;
  AbstractLockManager Manager;
};

} // namespace comlat

#endif // COMLAT_ADT_FLOWGRAPH_H
