//===- adt/PrivSet.cpp - Blind-insert set for privatization ----------------===//

#include "adt/PrivSet.h"

#include <algorithm>

using namespace comlat;
using namespace comlat::dsl;

PrivSetSig::PrivSetSig() {
  Insert = Sig.addMethod("insert", 1, /*HasRet=*/false, /*Mutating=*/true);
  Remove = Sig.addMethod("remove", 1, /*HasRet=*/false, /*Mutating=*/true);
  Contains = Sig.addMethod("contains", 1, /*HasRet=*/true,
                           /*Mutating=*/false);
}

const PrivSetSig &comlat::privSetSig() {
  static const PrivSetSig S;
  return S;
}

const CommSpec &comlat::privSetSpec() {
  static const CommSpec Spec = [] {
    const PrivSetSig &S = privSetSig();
    CommSpec Out(&S.Sig, "privset");
    const FormulaPtr KeysDiffer = ne(arg1(0), arg2(0));
    // Blind mutators self-commute unconditionally: insert;insert leaves
    // {x, y} regardless of order (likewise remove;remove), and neither
    // returns anything order could leak through.
    Out.set(S.Insert, S.Insert, top());
    Out.set(S.Remove, S.Remove, top());
    Out.set(S.Insert, S.Remove, KeysDiffer);
    Out.set(S.Insert, S.Contains, KeysDiffer);
    Out.set(S.Remove, S.Contains, KeysDiffer);
    Out.set(S.Contains, S.Contains, top());
    return Out;
  }();
  return Spec;
}

TxPrivSet::~TxPrivSet() = default;

namespace {

/// GateTarget over sharded IntHashSets (same sharding discipline as the
/// boosted set: each key's cells live in the shard its admission stripe
/// serializes). Insert opts into privatized coalescing: its delta is
/// (Slot = key, Amount = insertion count), applied idempotently.
class PrivSetGateTarget : public GateTarget {
public:
  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const PrivSetSig &S = privSetSig();
    const int64_t Key = Args[0].asInt();
    IntHashSet &Set = shardFor(Args[0]);
    if (Method == S.Insert) {
      if (Set.insert(Key))
        Actions.push_back(GateAction{[&Set, Key] { Set.erase(Key); },
                                     [&Set, Key] { Set.insert(Key); }});
      return Value::none();
    }
    if (Method == S.Remove) {
      if (Set.erase(Key))
        Actions.push_back(GateAction{[&Set, Key] { Set.insert(Key); },
                                     [&Set, Key] { Set.erase(Key); }});
      return Value::none();
    }
    assert(Method == S.Contains && "unknown privset method");
    return Value::boolean(Set.contains(Key));
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    COMLAT_UNREACHABLE("privset has no state functions");
  }

  std::string gateSignature() const override {
    std::vector<int64_t> All;
    for (const IntHashSet &Set : Shards) {
      const std::vector<int64_t> Part = Set.sortedElements();
      All.insert(All.end(), Part.begin(), Part.end());
    }
    std::sort(All.begin(), All.end());
    std::string Out;
    for (const int64_t Key : All) {
      Out += std::to_string(Key);
      Out += ',';
    }
    return Out;
  }

  bool gateConcurrentSafe() const override { return true; }

  bool privSupported(MethodId M) const override {
    return M == privSetSig().Insert;
  }
  void privDelta(MethodId M, ValueSpan Args, int64_t &Slot,
                 int64_t &Amount) override {
    assert(M == privSetSig().Insert && "not privatizable");
    Slot = Args[0].asInt();
    Amount = 1; // Insert is idempotent; the count only sizes flushes.
  }
  void privApplyDelta(int64_t Slot, int64_t Amount) override {
    shardFor(Value::integer(Slot)).insert(Slot);
  }
  Invocation privInvocation(int64_t Slot, int64_t Amount) const override {
    return Invocation(privSetSig().Insert, {Value::integer(Slot)});
  }

private:
  IntHashSet &shardFor(const Value &Key) { return Shards[gateStripeOf(Key)]; }

  IntHashSet Shards[GateStripeCount];
};

class GatedPrivSet : public TxPrivSet {
public:
  explicit GatedPrivSet(bool Privatize)
      : Keeper(&privSetSpec(), &Target,
               Privatize ? "privset-privatized" : "privset-gatekeeper",
               Privatize) {
    // Every non-trivial condition is a bare keys-differ disjunct, so
    // admission stripes; insert must survive the greedy classification.
    assert(Keeper.striped() && "privset conditions are key-separable");
    assert(Keeper.privatized() == Privatize &&
           "insert must classify as privatizable");
  }

  bool insert(Transaction &Tx, int64_t Key) override {
    return invoke(Tx, privSetSig().Insert, Key, nullptr);
  }
  bool remove(Transaction &Tx, int64_t Key) override {
    return invoke(Tx, privSetSig().Remove, Key, nullptr);
  }
  bool contains(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, privSetSig().Contains, Key, &Res);
  }

  std::string signature() const override {
    Keeper.mergePrivatizedQuiesced();
    return Target.gateSignature();
  }
  const char *schemeName() const override { return Keeper.name(); }

private:
  bool invoke(Transaction &Tx, MethodId Method, int64_t Key, bool *Res) {
    const Value KeyVal = Value::integer(Key);
    const ValueSpan Args(&KeyVal, 1);
    Value Ret;
    if (!Keeper.invoke(Tx, Method, Args, Ret))
      return false;
    if (Res)
      *Res = Ret.asBool();
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(Method, Args, Ret));
    return true;
  }

  PrivSetGateTarget Target;
  mutable ForwardGatekeeper Keeper;
};

} // namespace

std::unique_ptr<TxPrivSet> comlat::makeGatedPrivSet(bool Privatize) {
  return std::make_unique<GatedPrivSet>(Privatize);
}

std::unique_ptr<GateTarget> comlat::makePrivSetGateTarget() {
  return std::make_unique<PrivSetGateTarget>();
}

ValidationHarness comlat::privSetValidationHarness(unsigned KeySpace) {
  ValidationHarness Harness;
  Harness.MakeTarget = [] { return makePrivSetGateTarget(); };
  Harness.RandomArgs = [KeySpace](Rng &R, MethodId) {
    return std::vector<Value>{
        Value::integer(static_cast<int64_t>(R.nextBelow(KeySpace)))};
  };
  return Harness;
}

Value PrivSetReplayer::replay(uintptr_t StructureTag, const Invocation &Inv) {
  const PrivSetSig &S = privSetSig();
  const int64_t Key = Inv.Args[0].asInt();
  if (Inv.Method == S.Insert) {
    Set.insert(Key);
    return Value::none();
  }
  if (Inv.Method == S.Remove) {
    Set.erase(Key);
    return Value::none();
  }
  assert(Inv.Method == S.Contains && "unknown privset method");
  return Value::boolean(Set.contains(Key));
}
