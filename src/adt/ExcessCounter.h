//===- adt/ExcessCounter.h - Privatizable preflow excess view ---*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter-like half of the preflow-push update (§5) as its own ADT: a
/// dense array of per-node excess counters with a blind addExcess(node,
/// amount) and a readExcess(node). A full pushFlow is not privatizable —
/// it reads residuals and returns the pushed amount — but the excess
/// updates it fans out are: addExcess self-commutes unconditionally and
/// carries its whole effect as one (node, amount) delta, so the spec
/// classification diverts it to per-worker replicas while readExcess
/// blocks and merges. This mirrors how relaxation-style graph algorithms
/// split a conditional step from commutative counter updates.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_EXCESSCOUNTER_H
#define COMLAT_ADT_EXCESSCOUNTER_H

#include "core/Spec.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"

#include <memory>
#include <vector>

namespace comlat {

/// Method ids of the excess-counter ADT.
struct ExcessSig {
  DataTypeSig Sig{"excess"};
  MethodId AddExcess, ReadExcess;

  ExcessSig();
};

const ExcessSig &excessSig();

/// addExcess ~ addExcess is top (blind additions commute everywhere, even
/// on the same node); either pair with readExcess requires distinct nodes;
/// readExcess ~ readExcess is top. SIMPLE and key-separable.
const CommSpec &excessSpec();

/// Transactional excess counters; false return = conflict.
class TxExcessCounter {
public:
  virtual ~TxExcessCounter();

  virtual bool addExcess(Transaction &Tx, int64_t Node, int64_t Amount) = 0;
  virtual bool readExcess(Transaction &Tx, int64_t Node, int64_t &Res) = 0;

  /// Excess of \p Node (quiesced).
  virtual int64_t value(int64_t Node) const = 0;
  virtual const char *schemeName() const = 0;

  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Forward-gatekept excess counters over \p NumNodes nodes; with
/// \p Privatize additions divert to per-worker replicas and merge on the
/// first read (or at quiesced boundaries).
std::unique_ptr<TxExcessCounter> makeGatedExcessCounter(unsigned NumNodes,
                                                        bool Privatize);

/// Replays excess-counter histories for the serializability oracle.
class ExcessReplayer : public Replayer {
public:
  explicit ExcessReplayer(unsigned NumNodes) : Excess(NumNodes, 0) {}

  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override;

private:
  std::vector<int64_t> Excess;
};

} // namespace comlat

#endif // COMLAT_ADT_EXCESSCOUNTER_H
