//===- adt/BoostedSet.cpp - Transactional set variants ---------------------===//

#include "adt/BoostedSet.h"

#include <algorithm>

using namespace comlat;

TxSet::~TxSet() = default;

/// part(k) = k mod P, mapped into [0, P).
static int64_t partitionOf(int64_t Key, unsigned Partitions) {
  const int64_t P = static_cast<int64_t>(Partitions);
  const int64_t M = Key % P;
  return M < 0 ? M + P : M;
}

/// Runs one mutation on the concrete set, returning whether it changed and
/// registering the transaction-local undo.
namespace {

/// Sequential baseline: no conflict detection, no undo (never aborts).
class DirectSet : public TxSet {
public:
  bool add(Transaction &Tx, int64_t Key, bool &Res) override {
    Res = Set.insert(Key);
    record(Tx, setSig().Add, Key, Res);
    return true;
  }
  bool remove(Transaction &Tx, int64_t Key, bool &Res) override {
    Res = Set.erase(Key);
    record(Tx, setSig().Remove, Key, Res);
    return true;
  }
  bool contains(Transaction &Tx, int64_t Key, bool &Res) override {
    Res = Set.contains(Key);
    record(Tx, setSig().Contains, Key, Res);
    return true;
  }
  std::string signature() const override { return Set.signature(); }
  const char *schemeName() const override { return "direct"; }

private:
  void record(Transaction &Tx, MethodId M, int64_t Key, bool Res) {
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(M, {Value::integer(Key)},
                                            Value::boolean(Res)));
  }
  IntHashSet Set;
};

/// Abstract-lock-protected set (any SIMPLE spec point).
class LockedSet : public TxSet {
public:
  LockedSet(const CommSpec &Spec, unsigned Partitions)
      : Scheme(Spec),
        Manager(&Scheme, Spec.name(),
                [Partitions](StateFnId, const Value &V) {
                  return Value::integer(partitionOf(V.asInt(), Partitions));
                }),
        Label(Spec.name()) {}

  bool add(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Add, Key, Res);
  }
  bool remove(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Remove, Key, Res);
  }
  bool contains(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Contains, Key, Res);
  }
  std::string signature() const override {
    std::lock_guard<std::mutex> Guard(M);
    return Set.signature();
  }
  const char *schemeName() const override { return Label.c_str(); }

private:
  bool invoke(Transaction &Tx, MethodId Method, int64_t Key, bool &Res) {
    const Value KeyVal = Value::integer(Key);
    const ValueSpan Args(&KeyVal, 1);
    if (!Manager.acquirePre(Tx, Method, Args))
      return false;
    {
      std::lock_guard<std::mutex> Guard(M);
      const SetSig &S = setSig();
      if (Method == S.Add) {
        Res = Set.insert(Key);
        if (Res)
          Tx.addUndo([this, Key] {
            std::lock_guard<std::mutex> G(M);
            Set.erase(Key);
          });
      } else if (Method == S.Remove) {
        Res = Set.erase(Key);
        if (Res)
          Tx.addUndo([this, Key] {
            std::lock_guard<std::mutex> G(M);
            Set.insert(Key);
          });
      } else {
        Res = Set.contains(Key);
      }
    }
    if (!Manager.acquirePost(Tx, Method, Args, Value::boolean(Res)))
      return false; // Mutation (if any) reverts via the undo log on abort.
    if (Tx.recording())
      Tx.recordInvocation(tag(),
                          Invocation(Method, Args, Value::boolean(Res)));
    return true;
  }

  LockScheme Scheme;
  AbstractLockManager Manager;
  std::string Label;
  mutable std::mutex M;
  IntHashSet Set;
};

/// GateTarget adapter over the concrete set. The representation is sharded
/// by the gatekeeper's stripe function, so a striped gatekeeper may run
/// same-stripe-serialized invocations concurrently across stripes: every
/// key's cells live in exactly the shard its admission stripe serializes.
class SetGateTarget : public GateTarget {
public:
  Value gateExecute(MethodId Method, ValueSpan Args,
                    GateActionList &Actions) override {
    const SetSig &S = setSig();
    const int64_t Key = Args[0].asInt();
    IntHashSet &Set = shardFor(Args[0]);
    if (Method == S.Add) {
      const bool Changed = Set.insert(Key);
      if (Changed)
        Actions.push_back(GateAction{[&Set, Key] { Set.erase(Key); },
                                     [&Set, Key] { Set.insert(Key); }});
      return Value::boolean(Changed);
    }
    if (Method == S.Remove) {
      const bool Changed = Set.erase(Key);
      if (Changed)
        Actions.push_back(GateAction{[&Set, Key] { Set.insert(Key); },
                                     [&Set, Key] { Set.erase(Key); }});
      return Value::boolean(Changed);
    }
    assert(Method == S.Contains && "unknown set method");
    return Value::boolean(Set.contains(Key));
  }

  Value gateEvalStateFn(StateFnId F, ValueSpan Args) override {
    // part() is pure (arguments only), so it is safe on the striped path.
    assert(F == setSig().Part && "unknown set state function");
    return Value::integer(partitionOf(Args[0].asInt(), 16));
  }

  std::string gateSignature() const override {
    // Merge shards into the canonical (sorted, comma-joined) fingerprint,
    // identical to an unsharded IntHashSet's signature.
    std::vector<int64_t> All;
    for (const IntHashSet &Set : Shards) {
      const std::vector<int64_t> Part = Set.sortedElements();
      All.insert(All.end(), Part.begin(), Part.end());
    }
    std::sort(All.begin(), All.end());
    std::string Out;
    for (const int64_t Key : All) {
      Out += std::to_string(Key);
      Out += ',';
    }
    return Out;
  }

  bool gateConcurrentSafe() const override { return true; }

private:
  IntHashSet &shardFor(const Value &Key) {
    return Shards[gateStripeOf(Key)];
  }

  IntHashSet Shards[GateStripeCount];
};

/// Forward-gatekept set.
class GatedSet : public TxSet {
public:
  explicit GatedSet(const CommSpec &Spec)
      : Keeper(&Spec, &Target, Spec.name() + "-gatekeeper") {}

  bool add(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Add, Key, Res);
  }
  bool remove(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Remove, Key, Res);
  }
  bool contains(Transaction &Tx, int64_t Key, bool &Res) override {
    return invoke(Tx, setSig().Contains, Key, Res);
  }
  std::string signature() const override { return Target.gateSignature(); }
  const char *schemeName() const override { return Keeper.name(); }

private:
  bool invoke(Transaction &Tx, MethodId Method, int64_t Key, bool &Res) {
    const Value KeyVal = Value::integer(Key);
    const ValueSpan Args(&KeyVal, 1);
    Value Ret;
    if (!Keeper.invoke(Tx, Method, Args, Ret))
      return false;
    Res = Ret.asBool();
    if (Tx.recording())
      Tx.recordInvocation(tag(), Invocation(Method, Args, Ret));
    return true;
  }

  SetGateTarget Target;
  ForwardGatekeeper Keeper;
};

} // namespace

std::unique_ptr<TxSet> comlat::makeDirectSet() {
  return std::make_unique<DirectSet>();
}

std::unique_ptr<TxSet> comlat::makeLockedSet(const CommSpec &Spec,
                                             unsigned Partitions) {
  return std::make_unique<LockedSet>(Spec, Partitions);
}

std::unique_ptr<TxSet> comlat::makeGatedSet(const CommSpec &Spec) {
  return std::make_unique<GatedSet>(Spec);
}

std::unique_ptr<GateTarget> comlat::makeSetGateTarget() {
  return std::make_unique<SetGateTarget>();
}

ValidationHarness comlat::setValidationHarness(unsigned KeySpace) {
  ValidationHarness Harness;
  Harness.MakeTarget = [] { return makeSetGateTarget(); };
  Harness.RandomArgs = [KeySpace](Rng &R, MethodId) {
    return std::vector<Value>{
        Value::integer(static_cast<int64_t>(R.nextBelow(KeySpace)))};
  };
  return Harness;
}

Value SetReplayer::replay(uintptr_t StructureTag, const Invocation &Inv) {
  const SetSig &S = setSig();
  const int64_t Key = Inv.Args[0].asInt();
  if (Inv.Method == S.Add)
    return Value::boolean(Set.insert(Key));
  if (Inv.Method == S.Remove)
    return Value::boolean(Set.erase(Key));
  assert(Inv.Method == S.Contains && "unknown set method");
  return Value::boolean(Set.contains(Key));
}
