//===- adt/PrivSet.h - Blind-insert set for privatization -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set variant whose mutators are *blind*: insert(x) and remove(x)
/// return nothing, so their abstract effect is key-local and
/// state-independent — exactly the shape privatized coalescing
/// (runtime/Privatizer.h) requires. Under the strengthened (read/write)
/// specification insert self-commutes unconditionally and is the only
/// method the greedy classification privatizes; remove and contains
/// become blockers that force a merge before running.
///
/// This is the set counterpart of the paper's running accumulator example:
/// the ordinary SetSig::Add returns the changed bit, which makes its
/// return state-dependent and thus non-privatizable; dropping the return
/// (many clients never look at it) recovers the unconditional lattice top
/// for the insert/insert pair and with it the detection-free fast path.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_PRIVSET_H
#define COMLAT_ADT_PRIVSET_H

#include "core/Spec.h"
#include "runtime/Gatekeeper.h"
#include "runtime/SerialChecker.h"
#include "runtime/SpecValidator.h"

#include "adt/IntHashSet.h"

#include <memory>

namespace comlat {

/// Method ids of the blind-insert set ADT.
struct PrivSetSig {
  DataTypeSig Sig{"privset"};
  MethodId Insert, Remove, Contains;

  PrivSetSig();
};

const PrivSetSig &privSetSig();

/// The strengthened (read/write) point for the blind signature: mutator
/// self-pairs are top, every cross pair requires distinct keys. SIMPLE and
/// key-separable, so the gatekeeper stripes; insert classifies as
/// privatizable (remove does not — it conflicts with insert on equal keys
/// and loses the greedy race to the lower method id).
const CommSpec &privSetSpec();

/// Transactional blind-insert set; false return = conflict.
class TxPrivSet {
public:
  virtual ~TxPrivSet();

  virtual bool insert(Transaction &Tx, int64_t Key) = 0;
  virtual bool remove(Transaction &Tx, int64_t Key) = 0;
  virtual bool contains(Transaction &Tx, int64_t Key, bool &Res) = 0;

  /// Abstract-state fingerprint; call only when quiesced.
  virtual std::string signature() const = 0;
  virtual const char *schemeName() const = 0;

  uintptr_t tag() const { return reinterpret_cast<uintptr_t>(this); }
};

/// Forward-gatekept blind set; with \p Privatize inserts divert to
/// per-worker replicas and merge on the first remove/contains (or at
/// quiesced boundaries).
std::unique_ptr<TxPrivSet> makeGatedPrivSet(bool Privatize);

/// A bare blind-set GateTarget (spec validator, custom gatekeepers).
std::unique_ptr<GateTarget> makePrivSetGateTarget();

/// Validation bindings for the blind-set specification.
ValidationHarness privSetValidationHarness(unsigned KeySpace = 4);

/// Replays blind-set histories for the serializability oracle.
class PrivSetReplayer : public Replayer {
public:
  Value replay(uintptr_t StructureTag, const Invocation &Inv) override;
  std::string stateSignature() override { return Set.signature(); }

private:
  IntHashSet Set;
};

} // namespace comlat

#endif // COMLAT_ADT_PRIVSET_H
