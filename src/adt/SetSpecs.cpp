//===- adt/SetSpecs.cpp - The set's commutativity lattice ------------------===//

#include "adt/SetSpecs.h"
#include "core/Lattice.h"

using namespace comlat;
using namespace comlat::dsl;

SetSig::SetSig() {
  Add = Sig.addMethod("add", 1, /*HasRet=*/true, /*Mutating=*/true);
  Remove = Sig.addMethod("remove", 1, /*HasRet=*/true, /*Mutating=*/true);
  Contains = Sig.addMethod("contains", 1, /*HasRet=*/true,
                           /*Mutating=*/false);
  Part = Sig.addStateFn("part", 1, /*Pure=*/true);
}

const SetSig &comlat::setSig() {
  static const SetSig S;
  return S;
}

/// `neither invocation changed the set`: r1 = false and r2 = false.
static FormulaPtr neitherMutated() {
  return conj(eq(ret1(), cst(false)), eq(ret2(), cst(false)));
}

const CommSpec &comlat::preciseSetSpec() {
  static const CommSpec Spec = [] {
    const SetSig &S = setSig();
    CommSpec Out(&S.Sig, "set-precise");
    const FormulaPtr KeysDiffer = ne(arg1(0), arg2(0));
    // (1) add ~ add, (2) add ~ remove, (4) remove ~ remove: keys differ or
    // neither mutated.
    Out.set(S.Add, S.Add, disj(KeysDiffer, neitherMutated()));
    Out.set(S.Add, S.Remove, disj(KeysDiffer, neitherMutated()));
    Out.set(S.Remove, S.Remove, disj(KeysDiffer, neitherMutated()));
    // (3) add ~ contains, (5) remove ~ contains: keys differ or the
    // mutator changed nothing.
    Out.set(S.Add, S.Contains, disj(KeysDiffer, eq(ret1(), cst(false))));
    Out.set(S.Remove, S.Contains, disj(KeysDiffer, eq(ret1(), cst(false))));
    // (6) contains ~ contains: always.
    Out.set(S.Contains, S.Contains, top());
    return Out;
  }();
  return Spec;
}

const CommSpec &comlat::strengthenedSetSpec() {
  // Fig. 3 is exactly the SIMPLE under-approximation of Fig. 2 (the
  // disciplined strengthening of §4.1); derive it rather than restate it.
  static const CommSpec Spec =
      simpleUnderApproxSpec(preciseSetSpec(), "set-strengthened");
  return Spec;
}

const CommSpec &comlat::exclusiveSetSpec() {
  static const CommSpec Spec = [] {
    const SetSig &S = setSig();
    CommSpec Out = strengthenedSetSpec();
    Out.setName("set-exclusive");
    Out.set(S.Contains, S.Contains, ne(arg1(0), arg2(0)));
    return Out;
  }();
  return Spec;
}

const CommSpec &comlat::partitionedSetSpec() {
  static const CommSpec Spec =
      partitionSpec(strengthenedSetSpec(), setSig().Part, "set-partitioned");
  return Spec;
}

const CommSpec &comlat::bottomSetSpec() {
  static const CommSpec Spec = bottomSpec(setSig().Sig, "set-bottom");
  return Spec;
}
