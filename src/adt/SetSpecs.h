//===- adt/SetSpecs.h - The set's commutativity lattice ---------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The signature of the set ADT and the specification points of its
/// commutativity lattice the paper studies (§2.3-§2.4, §4, §5):
///
///  * precise (Fig. 2): methods commute when their keys differ or neither
///    mutated — not SIMPLE, needs a forward gatekeeper;
///  * strengthened (Fig. 3): keys must differ for add/remove pairs —
///    SIMPLE; its lock scheme is read/write locks on keys;
///  * exclusive: additionally contains~contains only on distinct keys —
///    SIMPLE; exclusive locks on keys (Herlihy-Koskinen style [10]);
///  * partitioned (§4.2): the exclusive clauses coarsened through part();
///  * bottom: nothing commutes; a single global lock (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_ADT_SETSPECS_H
#define COMLAT_ADT_SETSPECS_H

#include "core/Spec.h"

namespace comlat {

/// Method and state-function ids of the set ADT.
struct SetSig {
  DataTypeSig Sig{"set"};
  MethodId Add, Remove, Contains;
  /// Pure unary partition function for the §4.2 transform; bound at
  /// runtime to `key mod P`.
  StateFnId Part;

  SetSig();
};

/// The process-wide set signature (specs below are relative to it).
const SetSig &setSig();

/// Fig. 2: the precise specification F*.
const CommSpec &preciseSetSpec();

/// Fig. 3: the strengthened SIMPLE specification (read/write key locks).
const CommSpec &strengthenedSetSpec();

/// Exclusive-lock variant: contains~contains also requires distinct keys.
const CommSpec &exclusiveSetSpec();

/// §4.2: Fig. 3 with every clause coarsened to part(a) != part(b).
const CommSpec &partitionedSetSpec();

/// Bottom of the lattice: single global lock.
const CommSpec &bottomSetSpec();

} // namespace comlat

#endif // COMLAT_ADT_SETSPECS_H
